//! Line-delimited JSON wire protocol for `msgc serve`.
//!
//! Requests (one JSON object per line):
//!
//! ```json
//! {"op":"ping"}
//! {"op":"score","user":3,"history":[1,2,3],"k":10}
//! {"op":"score","user":3,"history":[1,2,3],"k":10,"topk":"ann"}
//! {"op":"append","user":3,"item":4,"k":10}
//! {"op":"admin","cmd":"snapshot"}
//! ```
//!
//! The optional `"topk"` field selects the retrieval path: `"exact"`
//! (full-catalog projection, bitwise-identical to offline scoring) or
//! `"ann"` (HNSW approximate top-k). Omitted → the server's default.
//!
//! `"admin"` requests are read-only and bypass the batcher: `"snapshot"`
//! (default) returns the name-sorted registry metrics, sketch quantiles
//! and SLO states; `"health"` returns pass/degraded with reasons;
//! `"prom"` returns the Prometheus text exposition wrapped in one JSON
//! line. See DESIGN.md §15 for the response schemas.
//!
//! Responses:
//!
//! ```json
//! {"ok":true}
//! {"user":3,"items":[7,2],"scores":[1.25,0.5]}
//! {"error":"..."}
//! ```
//!
//! Scores are printed with Rust's shortest-round-trip float formatting and
//! parsed back as `f64` before narrowing to `f32`; since `f64` carries more
//! than double an `f32`'s significand, the narrowing recovers the exact
//! served bits — the wire never loses score precision.

use recdata::ItemId;
use telemetry::json::{parse, Json};

use crate::engine::{Request, Response, TopK};

/// A read-only admin command (answered by [`crate::obs::ServeObs`]
/// without entering the batcher).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdminCmd {
    /// Name-sorted metrics + sketch quantiles + SLO states.
    Snapshot,
    /// Pass/degraded with per-monitor reasons.
    Health,
    /// Prometheus text exposition (JSON-wrapped).
    Prom,
}

impl AdminCmd {
    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<AdminCmd> {
        match s {
            "snapshot" => Some(AdminCmd::Snapshot),
            "health" => Some(AdminCmd::Health),
            "prom" => Some(AdminCmd::Prom),
            _ => None,
        }
    }
}

/// A parsed inbound line.
#[derive(Clone, Debug)]
pub enum Incoming {
    /// Liveness probe (used by CI to await readiness).
    Ping,
    /// A scoring request for the engine.
    Req(Request),
    /// A read-only observability query.
    Admin(AdminCmd),
}

/// Response line for a ping.
pub const PONG: &str = "{\"ok\":true}";

fn get_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_num)
        .filter(|v| *v >= 0.0 && v.fract() == 0.0)
        .map(|v| v as u64)
        .ok_or_else(|| format!("missing or invalid \"{key}\""))
}

fn get_topk(obj: &Json) -> Result<Option<TopK>, String> {
    match obj.get("topk") {
        None => Ok(None),
        Some(j) => {
            let s = j.as_str().ok_or("non-string \"topk\"")?;
            TopK::parse(s)
                .map(Some)
                .ok_or_else(|| format!("unknown \"topk\" value \"{s}\" (exact|ann)"))
        }
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Incoming, String> {
    let obj = parse(line).map_err(|e| format!("bad json: {e}"))?;
    let op = obj
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing \"op\"")?;
    match op {
        "ping" => Ok(Incoming::Ping),
        "score" => {
            let user = get_u64(&obj, "user")?;
            let history: Vec<ItemId> = obj
                .get("history")
                .and_then(Json::as_arr)
                .ok_or("missing \"history\"")?
                .iter()
                .map(|j| {
                    j.as_num()
                        .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                        .map(|v| v as ItemId)
                        .ok_or_else(|| "non-integer item in \"history\"".to_string())
                })
                .collect::<Result<_, _>>()?;
            let k = obj.get("k").map_or(Ok(10), |_| get_u64(&obj, "k"))? as usize;
            let topk = get_topk(&obj)?;
            Ok(Incoming::Req(Request::Score {
                user,
                history,
                k,
                topk,
            }))
        }
        "append" => {
            let user = get_u64(&obj, "user")?;
            let item = get_u64(&obj, "item")? as ItemId;
            let k = obj.get("k").map_or(Ok(10), |_| get_u64(&obj, "k"))? as usize;
            let topk = get_topk(&obj)?;
            Ok(Incoming::Req(Request::Append {
                user,
                item,
                k,
                topk,
            }))
        }
        "admin" => {
            let cmd = match obj.get("cmd") {
                None => AdminCmd::Snapshot,
                Some(j) => {
                    let s = j.as_str().ok_or("non-string \"cmd\"")?;
                    AdminCmd::parse(s).ok_or_else(|| {
                        format!("unknown \"cmd\" value \"{s}\" (snapshot|health|prom)")
                    })?
                }
            };
            Ok(Incoming::Admin(cmd))
        }
        other => Err(format!("unknown op \"{other}\"")),
    }
}

/// Formats a response as one JSON line (no trailing newline).
pub fn format_response(r: &Response) -> String {
    let mut s = String::with_capacity(32 + r.items.len() * 12);
    s.push_str("{\"user\":");
    s.push_str(&r.user.to_string());
    s.push_str(",\"items\":[");
    for (i, item) in r.items.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&item.to_string());
    }
    s.push_str("],\"scores\":[");
    for (i, score) in r.scores.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        // {:?} always includes a decimal point or exponent → valid JSON,
        // and round-trips the f32 exactly.
        s.push_str(&format!("{score:?}"));
    }
    s.push_str("]}");
    s
}

/// Formats an error as one JSON line.
pub fn format_error(msg: &str) -> String {
    let escaped: String = msg
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect();
    format!("{{\"error\":\"{escaped}\"}}")
}

/// Parses a response line back into items and scores (used by the bench
/// client and CI parity check).
pub fn parse_response(line: &str) -> Result<Response, String> {
    let obj = parse(line).map_err(|e| format!("bad json: {e}"))?;
    if let Some(err) = obj.get("error").and_then(Json::as_str) {
        return Err(format!("server error: {err}"));
    }
    let user = get_u64(&obj, "user")?;
    let items: Vec<ItemId> = obj
        .get("items")
        .and_then(Json::as_arr)
        .ok_or("missing \"items\"")?
        .iter()
        .map(|j| {
            j.as_num()
                .map(|v| v as ItemId)
                .ok_or_else(|| "non-numeric item".to_string())
        })
        .collect::<Result<_, _>>()?;
    let scores: Vec<f32> = obj
        .get("scores")
        .and_then(Json::as_arr)
        .ok_or("missing \"scores\"")?
        .iter()
        .map(|j| {
            j.as_num()
                .map(|v| v as f32)
                .ok_or_else(|| "non-numeric score".to_string())
        })
        .collect::<Result<_, _>>()?;
    Ok(Response {
        user,
        items,
        scores,
    })
}

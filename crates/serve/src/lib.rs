//! Tape-free inference serving for the Meta-SGCL reproduction.
//!
//! The stack, bottom to top:
//!
//! * [`FrozenScorer`] — the serving contract a frozen model implements:
//!   padded full-history scoring (bitwise-identical to the offline
//!   autograd path) and left-aligned incremental state (`begin` + batched
//!   `append`).
//! * [`Engine`] — per-user sessions and the scoring dispatch. In
//!   [`Mode::Full`] every request re-encodes its padded window, matching
//!   `score_sequence` bitwise; in [`Mode::Incremental`] appends are
//!   single-step K/V-cache extensions with slide-on-overflow.
//! * [`Batcher`] — a single worker that coalesces concurrent requests
//!   into one GEMM-friendly batch (micro-batching with a bounded wait).
//! * [`server`] — a line-delimited-JSON TCP front end (`msgc serve`).
//!
//! Serving metrics flow through the [`telemetry`] registry:
//! `serve.requests`, `serve.batch.size`, `serve.batch.wait_us`,
//! `serve.cache.hit`, `serve.cache.miss`, `serve.reencode`.
//!
//! Optional weight quantisation for serving lives in [`quant`]:
//! `msgc serve --quantize bf16|int8` halves (or quarters) the resident
//! frozen-weight bytes behind a measured top-k parity gate against the
//! f32 checkpoint. The default f32 mode stays bitwise-identical to the
//! offline scoring path.
//!
//! Optional approximate top-k retrieval lives in [`ann`]: a from-scratch
//! HNSW index over the frozen item embeddings (`msgc serve --ann`),
//! answering `TopK::Ann` requests in O(ef · d · log n) instead of the
//! O(|items| · d) full-catalog projection, behind a measured recall gate
//! (BENCH_9). Empty histories are served a deterministic cold-start
//! ranking (dataset popularity, or fixed item-id order).
//!
//! Production observability lives in [`obs`]: per-request phase traces
//! (enqueue → assemble → forward → retrieve → serialize) with
//! deterministic 1-in-N sampling, a streaming DDSketch latency quantile
//! (`serve.latency_us`), sliding-window SLO monitors (windowed p99 vs
//! budget, ANN fallback rate, cold-start rate, cache hit-rate floor,
//! background recall canary), and a read-only `"admin"` request kind on
//! the serve socket (`snapshot` / `health` / `prom`). `msgc top ADDR`
//! renders the snapshot as a polling terminal dashboard. See DESIGN.md
//! §15.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ann;
mod batcher;
mod engine;
pub mod obs;
pub mod proto;
pub mod quant;
pub mod server;

pub use ann::{HnswConfig, HnswIndex};
pub use batcher::{Batcher, JobReport};
pub use engine::{top_k, Engine, FrozenScorer, Mode, ReqObs, Request, Response, TopK};
pub use obs::{canary_probes, canary_recall, ObsConfig, ReqCtx, ServeObs, SloBudgets};
pub use quant::{quantize_gated, QuantReport};

//! Serving observability: request ids, deterministic trace sampling,
//! latency sketches, sliding-window SLO monitors, and the admin snapshot
//! (DESIGN.md §15).
//!
//! One [`ServeObs`] instance is shared by the TCP front end and the bench
//! loadgen. Per request it:
//!
//! * allocates a process-unique request id and decides *deterministically*
//!   (`id % sample_every == 0`) whether the request is traced — repeated
//!   runs sample the same requests, and overhead is bounded by the rate;
//! * records the end-to-end latency into the global `serve.latency_us`
//!   quantile sketch and the sliding SLO windows;
//! * for sampled requests, emits a span tree (`request` → `enqueue`,
//!   `assemble`, `forward`, `retrieve`, `serialize`) plus one flat `req`
//!   event to the trace stream.
//!
//! With no tracer attached and telemetry disabled, the per-request cost is
//! one atomic increment for the id and the windowed-rate mutex updates —
//! the BENCH_10 `disabled` section measures this against the ≤2% budget.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use recdata::ItemId;
use telemetry::metrics;
use telemetry::slo::{
    SloKind, SloMonitor, SloState, SloStatus, WindowCfg, WindowedQuantile, WindowedRate,
};
use telemetry::trace::{Field, SpanId, Tracer};

use crate::engine::{top_k, Engine, FrozenScorer, ReqObs};

/// SLO budgets for the windowed monitors. `None` disables a monitor
/// (e.g. the cache-hit floor is meaningless in [`crate::Mode::Full`],
/// where every request re-encodes).
#[derive(Debug, Clone, Copy)]
pub struct SloBudgets {
    /// Windowed p99 end-to-end latency budget, in milliseconds.
    pub p99_ms: f64,
    /// Maximum fraction of requests falling back from ANN to exact.
    pub max_fallback_rate: f64,
    /// Maximum fraction of requests served the cold-start ranking.
    pub max_cold_rate: f64,
    /// Minimum incremental cache hit rate (fast appends / requests).
    pub min_hit_rate: Option<f64>,
    /// Minimum live recall@10 measured by the ANN canary.
    pub min_recall: Option<f64>,
}

impl Default for SloBudgets {
    fn default() -> Self {
        SloBudgets {
            p99_ms: 50.0,
            max_fallback_rate: 0.1,
            max_cold_rate: 0.5,
            min_hit_rate: None,
            min_recall: None,
        }
    }
}

/// Configuration for [`ServeObs::new`].
pub struct ObsConfig {
    /// Trace output; `None` disables span/`req` emission entirely.
    pub tracer: Option<Arc<Tracer>>,
    /// Trace 1-in-N requests (keyed by request id). `0` is treated as 1
    /// (trace everything).
    pub sample_every: u64,
    /// Sliding-window geometry shared by every monitor.
    pub window: WindowCfg,
    /// SLO budgets.
    pub budgets: SloBudgets,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            tracer: None,
            sample_every: 64,
            window: WindowCfg::default(),
            budgets: SloBudgets::default(),
        }
    }
}

/// Everything known about one finished request, handed to
/// [`ServeObs::complete`] by the front end.
#[derive(Debug, Clone, Copy)]
pub struct ReqCtx {
    /// Request id from [`ServeObs::next_id`].
    pub id: u64,
    /// Wire operation (`"score"` / `"append"`).
    pub op: &'static str,
    /// User key.
    pub user: u64,
    /// Whether this request was selected for tracing.
    pub sampled: bool,
    /// End-to-end wall time (parse → response serialized).
    pub total_ns: u64,
    /// Queue wait: submit → batch dispatch.
    pub enqueue_ns: u64,
    /// Batch assembly: first-job pickup → dispatch.
    pub assemble_ns: u64,
    /// Response serialization time.
    pub serialize_ns: u64,
    /// Engine-side flags and phase timings.
    pub obs: ReqObs,
}

/// Shared serving-observability state (see module docs).
pub struct ServeObs {
    tracer: Option<Arc<Tracer>>,
    sample_every: u64,
    next_id: AtomicU64,
    window_secs: f64,
    win_latency: WindowedQuantile,
    win_qps: WindowedRate,
    win_fallback: WindowedRate,
    win_cold: WindowedRate,
    win_hit: WindowedRate,
    slo_p99: SloMonitor,
    slo_fallback: SloMonitor,
    slo_cold: SloMonitor,
    slo_hit: Option<SloMonitor>,
    slo_recall: Option<SloMonitor>,
    /// Latest canary recall@10 (f64 bits; u64::MAX = not yet measured).
    canary_bits: AtomicU64,
}

const CANARY_UNSET: u64 = u64::MAX;

impl ServeObs {
    /// Builds the shared observability state.
    pub fn new(cfg: ObsConfig) -> Arc<ServeObs> {
        let origin = Instant::now();
        let b = cfg.budgets;
        Arc::new(ServeObs {
            tracer: cfg.tracer,
            sample_every: cfg.sample_every.max(1),
            next_id: AtomicU64::new(1),
            window_secs: cfg.window.window_secs(),
            win_latency: WindowedQuantile::new(
                cfg.window,
                telemetry::sketch::DEFAULT_ALPHA,
                origin,
            ),
            win_qps: WindowedRate::new(cfg.window, origin),
            win_fallback: WindowedRate::new(cfg.window, origin),
            win_cold: WindowedRate::new(cfg.window, origin),
            win_hit: WindowedRate::new(cfg.window, origin),
            slo_p99: SloMonitor::new("p99_latency_ms", SloKind::UpperBound, b.p99_ms),
            slo_fallback: SloMonitor::new(
                "ann_fallback_rate",
                SloKind::UpperBound,
                b.max_fallback_rate,
            ),
            slo_cold: SloMonitor::new("cold_start_rate", SloKind::UpperBound, b.max_cold_rate),
            slo_hit: b
                .min_hit_rate
                .map(|t| SloMonitor::new("cache_hit_rate", SloKind::LowerBound, t)),
            slo_recall: b
                .min_recall
                .map(|t| SloMonitor::new("recall_at_10", SloKind::LowerBound, t)),
            canary_bits: AtomicU64::new(CANARY_UNSET),
        })
    }

    /// Allocates the next request id.
    pub fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The configured sampling period (1 = trace everything).
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Deterministic sampling decision for a request id: true when a
    /// tracer is attached and `id % sample_every == 0`.
    pub fn sampled(&self, id: u64) -> bool {
        self.tracer.is_some() && id.is_multiple_of(self.sample_every)
    }

    /// Records one finished request: latency sketch, SLO windows, and —
    /// when sampled — the span tree and `req` event.
    pub fn complete(&self, ctx: &ReqCtx) {
        let now = Instant::now();
        let total_us = ctx.total_ns / 1_000;
        metrics::sketch("serve.latency_us", false).record(total_us);
        self.win_latency.record_at(now, total_us);
        self.win_qps.record_at(now, 1, 1);
        self.win_fallback
            .record_at(now, ctx.obs.ann_fallback as u64, 1);
        self.win_cold.record_at(now, ctx.obs.cold_start as u64, 1);
        self.win_hit.record_at(now, ctx.obs.cache_hit as u64, 1);
        if ctx.sampled {
            self.emit_trace(ctx);
        }
    }

    /// Emits the span tree and flat `req` event for a sampled request.
    /// Span timestamps are reconstructed on the tracer clock: the request
    /// ends "now", phases are laid out from the recorded durations.
    fn emit_trace(&self, ctx: &ReqCtx) {
        let Some(tracer) = &self.tracer else { return };
        let end_ns = tracer.now_ns();
        let start_ns = end_ns.saturating_sub(ctx.total_ns);
        let root = tracer.alloc_id();
        let id_field = [("req_id", Field::U64(ctx.id))];
        // `enqueue` (submit → batch dispatch) and `assemble` (first-job
        // pickup → dispatch) both end at dispatch, so assemble nests at
        // the tail of the enqueue window rather than following it.
        let enq = ctx.enqueue_ns;
        let asm = ctx.assemble_ns.min(enq);
        tracer.emit_span(tracer.alloc_id(), root, "enqueue", start_ns, enq, &id_field);
        tracer.emit_span(
            tracer.alloc_id(),
            root,
            "assemble",
            start_ns + (enq - asm),
            asm,
            &id_field,
        );
        let mut cursor = start_ns + enq;
        for (name, dur) in [
            ("forward", ctx.obs.forward_ns),
            ("retrieve", ctx.obs.retrieve_ns),
        ] {
            tracer.emit_span(tracer.alloc_id(), root, name, cursor, dur, &id_field);
            cursor += dur;
        }
        tracer.emit_span(
            tracer.alloc_id(),
            root,
            "serialize",
            end_ns.saturating_sub(ctx.serialize_ns),
            ctx.serialize_ns,
            &id_field,
        );
        tracer.emit_span(
            root,
            SpanId::ROOT,
            "request",
            start_ns,
            ctx.total_ns,
            &[
                ("req_id", Field::U64(ctx.id)),
                ("op", Field::Str(ctx.op)),
                ("user", Field::U64(ctx.user)),
            ],
        );
        tracer.event(
            "req",
            &[
                ("id", Field::U64(ctx.id)),
                ("op", Field::Str(ctx.op)),
                ("user", Field::U64(ctx.user)),
                ("enqueue_ns", Field::U64(ctx.enqueue_ns)),
                ("assemble_ns", Field::U64(ctx.assemble_ns)),
                ("forward_ns", Field::U64(ctx.obs.forward_ns)),
                ("retrieve_ns", Field::U64(ctx.obs.retrieve_ns)),
                ("serialize_ns", Field::U64(ctx.serialize_ns)),
                ("total_ns", Field::U64(ctx.total_ns)),
                ("cold_start", Field::Bool(ctx.obs.cold_start)),
                ("cache_hit", Field::Bool(ctx.obs.cache_hit)),
                ("ann", Field::Bool(ctx.obs.ann)),
                ("ann_fallback", Field::Bool(ctx.obs.ann_fallback)),
            ],
        );
    }

    /// Flushes the trace stream, if any.
    pub fn flush(&self) {
        if let Some(t) = &self.tracer {
            t.flush();
        }
    }

    /// Publishes a fresh canary recall@10 measurement.
    pub fn set_canary_recall(&self, recall: f64) {
        self.canary_bits.store(recall.to_bits(), Ordering::Relaxed);
        metrics::gauge("serve.canary.recall_at_10", false).set(recall);
    }

    /// The latest canary measurement, if any.
    pub fn canary_recall(&self) -> Option<f64> {
        let bits = self.canary_bits.load(Ordering::Relaxed);
        (bits != CANARY_UNSET).then(|| f64::from_bits(bits))
    }

    /// Requests per second over the sliding window.
    pub fn qps(&self) -> f64 {
        let (n, _) = self.win_qps.totals_at(Instant::now());
        n as f64 / self.window_secs
    }

    /// Evaluates every configured SLO monitor against its window.
    pub fn slo_states(&self) -> Vec<SloState> {
        let now = Instant::now();
        let p99_ms = self
            .win_latency
            .quantile_at(now, 0.99)
            .map(|us| us / 1_000.0);
        let mut states = vec![
            self.slo_p99.eval(p99_ms),
            self.slo_fallback.eval(self.win_fallback.value_at(now)),
            self.slo_cold.eval(self.win_cold.value_at(now)),
        ];
        if let Some(m) = &self.slo_hit {
            states.push(m.eval(self.win_hit.value_at(now)));
        }
        if let Some(m) = &self.slo_recall {
            states.push(m.eval(self.canary_recall()));
        }
        states
    }

    /// The admin `snapshot` document: name-sorted registry metrics (as
    /// `metric` event objects) plus the evaluated SLO states, one line.
    pub fn snapshot_json(&self) -> String {
        // Refresh derived gauges so the snapshot is self-contained.
        metrics::gauge("serve.qps", false).set(self.qps());
        let metrics_json: Vec<String> = metrics::snapshot().iter().map(|m| m.to_jsonl()).collect();
        let slos_json: Vec<String> = self.slo_states().iter().map(|s| s.to_json()).collect();
        format!(
            "{{\"ok\":true,\"kind\":\"snapshot\",\"metrics\":[{}],\"slos\":[{}]}}",
            metrics_json.join(","),
            slos_json.join(",")
        )
    }

    /// The admin `health` document: `pass` when no monitor is currently
    /// degraded, else `degraded` with one reason per failing monitor.
    pub fn health_json(&self) -> String {
        let states = self.slo_states();
        let degraded: Vec<String> = states
            .iter()
            .filter(|s| s.status == SloStatus::Degraded)
            .map(|s| {
                format!(
                    "\"{}: {}\"",
                    s.name,
                    telemetry::trace::json_escape(&s.reason)
                )
            })
            .collect();
        let status = if degraded.is_empty() {
            "pass"
        } else {
            "degraded"
        };
        format!(
            "{{\"ok\":true,\"kind\":\"health\",\"status\":\"{status}\",\"reasons\":[{}]}}",
            degraded.join(",")
        )
    }

    /// The admin `prom` document: the Prometheus text exposition wrapped
    /// in one JSON line (the wire protocol is line-delimited).
    pub fn prom_json(&self) -> String {
        metrics::gauge("serve.qps", false).set(self.qps());
        let text = telemetry::prom::render(&metrics::snapshot());
        format!(
            "{{\"ok\":true,\"kind\":\"prom\",\"text\":\"{}\"}}",
            telemetry::trace::json_escape(&text)
        )
    }
}

/// Measures live ANN recall@`k`: replays `probes` through both the ANN
/// index and the exact full-catalog ranking, returning the mean overlap
/// fraction. `None` when the engine has no index, the model exposes no
/// query embeddings, or `probes` is empty.
///
/// Runs on the frozen model directly — no sessions are touched and no
/// `serve.*` request counters move, so the canary never pollutes traffic
/// accounting.
pub fn canary_recall<M: FrozenScorer>(
    engine: &Engine<M>,
    probes: &[Vec<ItemId>],
    k: usize,
) -> Option<f64> {
    let index = engine.ann()?;
    if probes.is_empty() || k == 0 {
        return None;
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for probe in probes {
        let Some(q) = engine.model().query_embedding(probe) else {
            continue;
        };
        let ann_items: Vec<ItemId> = index.search(&q, k, 0).into_iter().map(|(i, _)| i).collect();
        let scores = engine.model().score_full(probe);
        let (exact_items, _) = top_k(&scores, k);
        let hits = ann_items.iter().filter(|i| exact_items.contains(i)).count();
        total += hits as f64 / exact_items.len().max(1) as f64;
        counted += 1;
    }
    (counted > 0).then(|| total / counted as f64)
}

/// Deterministic synthetic probe histories for the recall canary, spread
/// across the catalog (seeded, so every run replays the same probes).
pub fn canary_probes(num_items: usize, count: usize, len: usize, seed: u64) -> Vec<Vec<ItemId>> {
    if num_items == 0 {
        return Vec::new();
    }
    (0..count)
        .map(|p| {
            let mut x = seed
                .wrapping_add(p as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15);
            (0..len.max(1))
                .map(|_| {
                    x ^= x >> 27;
                    x = x.wrapping_mul(0x2545_f491_4f6c_dd1d);
                    1 + (x % num_items as u64) as ItemId
                })
                .collect()
        })
        .collect()
}

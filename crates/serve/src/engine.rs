//! The serving engine: frozen-model contract, per-user sessions, and the
//! batched scoring dispatch.

use std::collections::HashMap;
use std::sync::Mutex;

use meta_sgcl::infer::{FrozenMetaSgcl, State as MetaState};
use models::{FrozenGru4Rec, GruState};
use recdata::ItemId;
use telemetry::metrics;
use tensor::bug::OrBug;

/// The contract a frozen model implements to be served.
///
/// Both paths must be bitwise-exact:
///
/// * [`score_full`](FrozenScorer::score_full) reproduces the offline
///   autograd scoring path (padded window) exactly — served responses in
///   [`Mode::Full`] can be compared `==` against `score_sequence`.
/// * [`begin`](FrozenScorer::begin) / [`append_batch`](FrozenScorer::append_batch)
///   maintain left-aligned incremental state whose scores reproduce a full
///   left-aligned re-encode of the same window exactly.
pub trait FrozenScorer: Send + Sync + 'static {
    /// Per-user incremental cache.
    type State: Send;

    /// Catalog size (excluding padding index 0); scores have
    /// `num_items + 1` entries.
    fn num_items(&self) -> usize;

    /// Maximum window length for incremental state; `0` means unbounded
    /// (e.g. a GRU recurrence, which has no position table to outgrow).
    fn window_cap(&self) -> usize;

    /// Full-history scores under offline (padded) semantics.
    fn score_full(&self, seq: &[ItemId]) -> Vec<f32>;

    /// Encodes a window into fresh incremental state, returning the state
    /// and the catalog scores. `window` is non-empty and at most
    /// [`window_cap`](FrozenScorer::window_cap) items (when capped).
    fn begin(&self, window: &[ItemId]) -> (Self::State, Vec<f32>);

    /// Items absorbed into a state.
    fn state_len(&self, state: &Self::State) -> usize;

    /// Appends one item per user in a single batch; returns each user's
    /// catalog scores in order.
    fn append_batch(&self, items: &[ItemId], states: &mut [&mut Self::State]) -> Vec<Vec<f32>>;
}

impl FrozenScorer for FrozenMetaSgcl {
    type State = MetaState;

    fn num_items(&self) -> usize {
        FrozenMetaSgcl::num_items(self)
    }

    fn window_cap(&self) -> usize {
        self.max_len()
    }

    fn score_full(&self, seq: &[ItemId]) -> Vec<f32> {
        self.score_padded(seq)
    }

    fn begin(&self, window: &[ItemId]) -> (MetaState, Vec<f32>) {
        self.begin_incremental(window)
    }

    fn state_len(&self, state: &MetaState) -> usize {
        state.len()
    }

    fn append_batch(&self, items: &[ItemId], states: &mut [&mut MetaState]) -> Vec<Vec<f32>> {
        self.append_incremental(items, states)
    }
}

impl FrozenScorer for FrozenGru4Rec {
    type State = GruState;

    fn num_items(&self) -> usize {
        FrozenGru4Rec::num_items(self)
    }

    fn window_cap(&self) -> usize {
        0 // position-free recurrence: exact at any history length
    }

    fn score_full(&self, seq: &[ItemId]) -> Vec<f32> {
        self.score_padded(seq)
    }

    fn begin(&self, window: &[ItemId]) -> (GruState, Vec<f32>) {
        let state = self.begin_incremental(window);
        let scores = self.scores(&self.hidden(&state)).row(0).to_vec();
        (state, scores)
    }

    fn state_len(&self, state: &GruState) -> usize {
        state.len()
    }

    fn append_batch(&self, items: &[ItemId], states: &mut [&mut GruState]) -> Vec<Vec<f32>> {
        let h = self.append_incremental(items, states);
        (0..states.len())
            .map(|i| {
                let row = tensor::Tensor::from_vec(h.row(i).to_vec(), vec![1, h.dims()[1]]);
                self.scores(&row).row(0).to_vec()
            })
            .collect()
    }
}

/// How the engine turns a request into scores.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Re-encode the padded window on every request. Bitwise-identical to
    /// the offline autograd scoring path; this is the default and what the
    /// CI parity gate checks.
    Full,
    /// Keep per-user incremental state under left-aligned semantics; an
    /// append is a single-step cache extension. Slides (full re-encodes of
    /// the last `window_cap` items) happen only on cache overflow.
    Incremental,
}

/// A scoring request.
#[derive(Clone, Debug)]
pub enum Request {
    /// (Re)set a user's history and score it.
    Score {
        /// User/session key.
        user: u64,
        /// Full interaction history, oldest first.
        history: Vec<ItemId>,
        /// Number of recommendations to return.
        k: usize,
    },
    /// Record one new interaction for a known user and re-score.
    Append {
        /// User/session key.
        user: u64,
        /// The new interaction.
        item: ItemId,
        /// Number of recommendations to return.
        k: usize,
    },
}

impl Request {
    fn user(&self) -> u64 {
        match self {
            Request::Score { user, .. } | Request::Append { user, .. } => *user,
        }
    }

    fn k(&self) -> usize {
        match self {
            Request::Score { k, .. } | Request::Append { k, .. } => *k,
        }
    }
}

/// Top-k recommendations for one request.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Echoed user key.
    pub user: u64,
    /// Recommended item ids, best first.
    pub items: Vec<ItemId>,
    /// Raw scores aligned with `items`.
    pub scores: Vec<f32>,
}

/// Ranks catalog scores exactly like `models::recommend_top_k` with
/// `exclude_seen = false`: skip padding index 0, stable descending sort,
/// truncate to `k`.
pub fn top_k(scores: &[f32], k: usize) -> (Vec<ItemId>, Vec<f32>) {
    let mut ranked: Vec<(ItemId, f32)> = scores
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, &s)| (i, s))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    ranked.truncate(k);
    ranked.into_iter().unzip()
}

struct Session<S> {
    history: Vec<ItemId>,
    state: Option<S>,
}

/// Per-user sessions plus the scoring dispatch over a frozen model.
pub struct Engine<M: FrozenScorer> {
    model: M,
    mode: Mode,
    sessions: Mutex<HashMap<u64, Session<M::State>>>,
}

impl<M: FrozenScorer> Engine<M> {
    /// Wraps a frozen model.
    pub fn new(model: M, mode: Mode) -> Self {
        Engine {
            model,
            mode,
            sessions: Mutex::new(HashMap::new()),
        }
    }

    /// The serving mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The frozen model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Number of live sessions.
    pub fn num_sessions(&self) -> usize {
        self.lock_sessions().len()
    }

    /// Runs one synthetic scoring pass through every serving path before
    /// real traffic, so first-request latency doesn't pay the cold-path
    /// costs (populating `tensor::pool` size classes, faulting in frozen
    /// weights, one-time SIMD feature detection). No session is created
    /// and no metrics are recorded; results are discarded.
    ///
    /// This exists because the BENCH_6 load phase showed a ~50× p99/p50
    /// ratio traced entirely to the first requests hitting empty pools.
    pub fn warm_up(&self) {
        let n = self.model.num_items();
        if n == 0 {
            return;
        }
        let cap = self.model.window_cap();
        let len = if cap == 0 { 8 } else { cap.min(8) };
        let history: Vec<ItemId> = (0..len).map(|i| 1 + i % n).collect();
        // Full path: pads to the model's window internally, so this
        // exercises the same shapes as any production Score request.
        let scores = self.model.score_full(&history);
        debug_assert_eq!(scores.len(), n + 1);
        if self.mode == Mode::Incremental {
            let (mut state, _) = self.model.begin(&history);
            if cap == 0 || self.model.state_len(&state) < cap {
                let _ = self.model.append_batch(&[1 + len % n], &mut [&mut state]);
            }
        }
    }

    fn lock_sessions(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Session<M::State>>> {
        self.sessions.lock().or_bug("sessions lock poisoned")
    }

    /// The incremental window for a history: the last `window_cap` items
    /// (or everything, when uncapped).
    fn window<'a>(&self, history: &'a [ItemId]) -> &'a [ItemId] {
        let cap = self.model.window_cap();
        if cap == 0 {
            history
        } else {
            &history[history.len().saturating_sub(cap)..]
        }
    }

    /// Scores a batch of requests, returning responses in request order.
    ///
    /// In [`Mode::Incremental`], runs of appendable requests for distinct
    /// users are coalesced into single batched cache-extension steps.
    pub fn handle_batch(&self, requests: &[Request]) -> Vec<Response> {
        metrics::counter("serve.requests", false).add(requests.len() as u64);
        metrics::histogram("serve.batch.size", false).record(requests.len() as u64);
        let mut out: Vec<Option<Response>> = requests.iter().map(|_| None).collect();
        match self.mode {
            Mode::Full => {
                for (i, req) in requests.iter().enumerate() {
                    out[i] = Some(self.handle_full(req));
                }
            }
            Mode::Incremental => {
                // Coalesce appendable requests (distinct users with live,
                // non-full state) into one batched step; everything else
                // flushes the group and runs alone.
                let mut group: Vec<(usize, u64, ItemId, usize)> = Vec::new();
                for (i, req) in requests.iter().enumerate() {
                    let fast = match req {
                        Request::Append { user, item, k } => {
                            if self.can_fast_append(*user) && !group.iter().any(|g| g.1 == *user) {
                                group.push((i, *user, *item, *k));
                                true
                            } else {
                                false
                            }
                        }
                        Request::Score { .. } => false,
                    };
                    if !fast {
                        self.flush_appends(&mut group, &mut out);
                        out[i] = Some(self.handle_slow(req));
                    }
                }
                self.flush_appends(&mut group, &mut out);
            }
        }
        out.into_iter()
            .map(|r| r.or_bug("every request answered"))
            .collect()
    }

    /// Full mode: every request re-encodes its padded window.
    fn handle_full(&self, req: &Request) -> Response {
        let user = req.user();
        let history = {
            let mut sessions = self.lock_sessions();
            let session = sessions.entry(user).or_insert_with(|| Session {
                history: Vec::new(),
                state: None,
            });
            match req {
                Request::Score { history, .. } => session.history = history.clone(),
                Request::Append { item, .. } => session.history.push(*item),
            }
            session.history.clone()
        };
        metrics::counter("serve.cache.miss", false).inc();
        metrics::counter("serve.reencode", false).inc();
        let scores = self.model.score_full(&history);
        let (items, scores) = top_k(&scores, req.k());
        Response {
            user,
            items,
            scores,
        }
    }

    /// True when an append can extend cached state without a re-encode.
    fn can_fast_append(&self, user: u64) -> bool {
        let cap = self.model.window_cap();
        let sessions = self.lock_sessions();
        sessions.get(&user).is_some_and(|s| {
            s.state
                .as_ref()
                .is_some_and(|st| cap == 0 || self.model.state_len(st) < cap)
        })
    }

    /// Runs one batched append over the grouped requests.
    fn flush_appends(
        &self,
        group: &mut Vec<(usize, u64, ItemId, usize)>,
        out: &mut [Option<Response>],
    ) {
        if group.is_empty() {
            return;
        }
        let mut taken: Vec<(u64, Session<M::State>)> = {
            let mut sessions = self.lock_sessions();
            group
                .iter()
                .map(|&(_, user, _, _)| {
                    let s = sessions
                        .remove(&user)
                        .or_bug("session checked in can_fast_append");
                    (user, s)
                })
                .collect()
        };
        let items: Vec<ItemId> = group.iter().map(|&(_, _, item, _)| item).collect();
        let scores = {
            let mut states: Vec<&mut M::State> = taken
                .iter_mut()
                .map(|(_, s)| s.state.as_mut().or_bug("state checked in can_fast_append"))
                .collect();
            self.model.append_batch(&items, &mut states)
        };
        metrics::counter("serve.cache.hit", false).add(group.len() as u64);
        for (((idx, user, item, k), (_, session)), user_scores) in
            group.iter().zip(taken.iter_mut()).zip(scores)
        {
            session.history.push(*item);
            let (items, scores) = top_k(&user_scores, *k);
            out[*idx] = Some(Response {
                user: *user,
                items,
                scores,
            });
        }
        let mut sessions = self.lock_sessions();
        for (user, session) in taken {
            sessions.insert(user, session);
        }
        group.clear();
    }

    /// Incremental mode, slow path: (re)encode the window from scratch —
    /// new histories, unknown users, and cache overflow (the slide).
    fn handle_slow(&self, req: &Request) -> Response {
        let user = req.user();
        let history = {
            let mut sessions = self.lock_sessions();
            let session = sessions.entry(user).or_insert_with(|| Session {
                history: Vec::new(),
                state: None,
            });
            match req {
                Request::Score { history, .. } => session.history = history.clone(),
                Request::Append { item, .. } => session.history.push(*item),
            }
            session.history.clone()
        };
        metrics::counter("serve.cache.miss", false).inc();
        let window = self.window(&history);
        let (state, scores) = if window.is_empty() {
            (None, vec![0.0; self.model.num_items() + 1])
        } else {
            metrics::counter("serve.reencode", false).inc();
            let (state, scores) = self.model.begin(window);
            (Some(state), scores)
        };
        self.lock_sessions()
            .get_mut(&user)
            .or_bug("session inserted above")
            .state = state;
        let (items, scores) = top_k(&scores, req.k());
        Response {
            user,
            items,
            scores,
        }
    }
}

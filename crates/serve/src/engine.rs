//! The serving engine: frozen-model contract, per-user sessions, and the
//! batched scoring dispatch.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

use meta_sgcl::infer::{FrozenMetaSgcl, State as MetaState};
use models::{FrozenGru4Rec, GruState};
use recdata::ItemId;
use telemetry::metrics;
use tensor::bug::OrBug;
use tensor::Tensor;

use crate::ann::HnswIndex;

/// The contract a frozen model implements to be served.
///
/// Both paths must be bitwise-exact:
///
/// * [`score_full`](FrozenScorer::score_full) reproduces the offline
///   autograd scoring path (padded window) exactly — served responses in
///   [`Mode::Full`] can be compared `==` against `score_sequence`.
/// * [`begin`](FrozenScorer::begin) / [`append_batch`](FrozenScorer::append_batch)
///   maintain left-aligned incremental state whose scores reproduce a full
///   left-aligned re-encode of the same window exactly.
pub trait FrozenScorer: Send + Sync + 'static {
    /// Per-user incremental cache.
    type State: Send;

    /// Catalog size (excluding padding index 0); scores have
    /// `num_items + 1` entries.
    fn num_items(&self) -> usize;

    /// Maximum window length for incremental state; `0` means unbounded
    /// (e.g. a GRU recurrence, which has no position table to outgrow).
    fn window_cap(&self) -> usize;

    /// Full-history scores under offline (padded) semantics.
    fn score_full(&self, seq: &[ItemId]) -> Vec<f32>;

    /// Encodes a window into fresh incremental state, returning the state
    /// and the catalog scores. `window` is non-empty and at most
    /// [`window_cap`](FrozenScorer::window_cap) items (when capped).
    fn begin(&self, window: &[ItemId]) -> (Self::State, Vec<f32>);

    /// Items absorbed into a state.
    fn state_len(&self, state: &Self::State) -> usize;

    /// Appends one item per user in a single batch; returns each user's
    /// catalog scores in order.
    fn append_batch(&self, items: &[ItemId], states: &mut [&mut Self::State]) -> Vec<Vec<f32>>;

    /// Query vector for approximate top-k retrieval: the hidden state
    /// [`score_full`](FrozenScorer::score_full) projects against the tied
    /// item table, under the same padded semantics. `None` when the model
    /// does not support ANN retrieval (the engine then falls back to the
    /// exact path) or the history is empty.
    fn query_embedding(&self, seq: &[ItemId]) -> Option<Vec<f32>> {
        let _ = seq;
        None
    }

    /// Dense f32 item-embedding table (`[num_items + 1, d]`, row 0 =
    /// padding) for building an ANN index. `None` when unsupported.
    fn item_embeddings(&self) -> Option<Tensor> {
        None
    }
}

impl FrozenScorer for FrozenMetaSgcl {
    type State = MetaState;

    fn num_items(&self) -> usize {
        FrozenMetaSgcl::num_items(self)
    }

    fn window_cap(&self) -> usize {
        self.max_len()
    }

    fn score_full(&self, seq: &[ItemId]) -> Vec<f32> {
        self.score_padded(seq)
    }

    fn begin(&self, window: &[ItemId]) -> (MetaState, Vec<f32>) {
        self.begin_incremental(window)
    }

    fn state_len(&self, state: &MetaState) -> usize {
        state.len()
    }

    fn append_batch(&self, items: &[ItemId], states: &mut [&mut MetaState]) -> Vec<Vec<f32>> {
        self.append_incremental(items, states)
    }

    fn query_embedding(&self, seq: &[ItemId]) -> Option<Vec<f32>> {
        FrozenMetaSgcl::query_embedding(self, seq)
    }

    fn item_embeddings(&self) -> Option<Tensor> {
        Some(FrozenMetaSgcl::item_embeddings(self))
    }
}

impl FrozenScorer for FrozenGru4Rec {
    type State = GruState;

    fn num_items(&self) -> usize {
        FrozenGru4Rec::num_items(self)
    }

    fn window_cap(&self) -> usize {
        0 // position-free recurrence: exact at any history length
    }

    fn score_full(&self, seq: &[ItemId]) -> Vec<f32> {
        self.score_padded(seq)
    }

    fn begin(&self, window: &[ItemId]) -> (GruState, Vec<f32>) {
        let state = self.begin_incremental(window);
        let scores = self.scores(&self.hidden(&state)).row(0).to_vec();
        (state, scores)
    }

    fn state_len(&self, state: &GruState) -> usize {
        state.len()
    }

    fn append_batch(&self, items: &[ItemId], states: &mut [&mut GruState]) -> Vec<Vec<f32>> {
        let h = self.append_incremental(items, states);
        (0..states.len())
            .map(|i| {
                let row = Tensor::from_vec(h.row(i).to_vec(), vec![1, h.dims()[1]]);
                self.scores(&row).row(0).to_vec()
            })
            .collect()
    }

    fn query_embedding(&self, seq: &[ItemId]) -> Option<Vec<f32>> {
        FrozenGru4Rec::query_embedding(self, seq)
    }

    fn item_embeddings(&self) -> Option<Tensor> {
        Some(self.item_table_f32())
    }
}

/// How the engine turns a request into scores.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Re-encode the padded window on every request. Bitwise-identical to
    /// the offline autograd scoring path; this is the default and what the
    /// CI parity gate checks.
    Full,
    /// Keep per-user incremental state under left-aligned semantics; an
    /// append is a single-step cache extension. Slides (full re-encodes of
    /// the last `window_cap` items) happen only on cache overflow.
    Incremental,
}

/// How a request's top-k is retrieved in [`Mode::Full`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TopK {
    /// Score the full catalog (`h · Mᵀ`); bitwise-identical to the offline
    /// autograd path. The default.
    #[default]
    Exact,
    /// Approximate maximum-inner-product retrieval through the HNSW index
    /// ([`crate::ann`]). Sub-linear in the catalog size; gated by a
    /// measured recall curve, not the bitwise parity contract. Requires an
    /// index ([`Engine::with_ann`]) — the engine falls back to
    /// [`TopK::Exact`] otherwise.
    Ann,
}

impl TopK {
    /// Parses the wire spelling (`"exact"` / `"ann"`).
    pub fn parse(s: &str) -> Option<TopK> {
        match s {
            "exact" => Some(TopK::Exact),
            "ann" => Some(TopK::Ann),
            _ => None,
        }
    }
}

/// A scoring request.
#[derive(Clone, Debug)]
pub enum Request {
    /// (Re)set a user's history and score it.
    Score {
        /// User/session key.
        user: u64,
        /// Full interaction history, oldest first.
        history: Vec<ItemId>,
        /// Number of recommendations to return.
        k: usize,
        /// Retrieval preference; `None` uses the engine default.
        topk: Option<TopK>,
    },
    /// Record one new interaction for a known user and re-score.
    Append {
        /// User/session key.
        user: u64,
        /// The new interaction.
        item: ItemId,
        /// Number of recommendations to return.
        k: usize,
        /// Retrieval preference; `None` uses the engine default.
        topk: Option<TopK>,
    },
}

impl Request {
    fn user(&self) -> u64 {
        match self {
            Request::Score { user, .. } | Request::Append { user, .. } => *user,
        }
    }

    fn k(&self) -> usize {
        match self {
            Request::Score { k, .. } | Request::Append { k, .. } => *k,
        }
    }

    fn topk(&self) -> Option<TopK> {
        match self {
            Request::Score { topk, .. } | Request::Append { topk, .. } => *topk,
        }
    }
}

/// Per-request observability report: outcome flags (which serving path
/// answered the request) plus phase timings.
///
/// Flags are always filled in — they mirror exactly what the `serve.*`
/// counters recorded for this request, so counter audits can cross-check
/// aggregate counts against per-request reports. Phase timings are only
/// measured when the batch is dispatched with `timed = true` (a sampled
/// trace in flight); otherwise they are zero and the hot path performs no
/// clock reads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReqObs {
    /// Served the deterministic cold-start ranking (empty history).
    pub cold_start: bool,
    /// Answered from live incremental state (batched fast append).
    pub cache_hit: bool,
    /// Answered through the ANN index.
    pub ann: bool,
    /// ANN was requested but the exact path answered instead.
    pub ann_fallback: bool,
    /// The model re-encoded a window (full forward) for this request.
    pub reencode: bool,
    /// Model forward time (encode / append step), when timed.
    pub forward_ns: u64,
    /// Retrieval time (top-k ranking or ANN search), when timed.
    pub retrieve_ns: u64,
}

/// Runs `f`, returning its wall-clock nanoseconds when `timed`.
fn timed_ns<T>(timed: bool, f: impl FnOnce() -> T) -> (T, u64) {
    if timed {
        let t = Instant::now();
        let v = f();
        (v, t.elapsed().as_nanos() as u64)
    } else {
        (f(), 0)
    }
}

/// Top-k recommendations for one request.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Echoed user key.
    pub user: u64,
    /// Recommended item ids, best first.
    pub items: Vec<ItemId>,
    /// Raw scores aligned with `items`.
    pub scores: Vec<f32>,
}

/// Ranks catalog scores exactly like `models::recommend_top_k` with
/// `exclude_seen = false`: skip padding index 0, stable descending sort,
/// truncate to `k`.
pub fn top_k(scores: &[f32], k: usize) -> (Vec<ItemId>, Vec<f32>) {
    let mut ranked: Vec<(ItemId, f32)> = scores
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, &s)| (i, s))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    ranked.truncate(k);
    ranked.into_iter().unzip()
}

struct Session<S> {
    history: Vec<ItemId>,
    state: Option<S>,
}

/// Per-user sessions plus the scoring dispatch over a frozen model.
pub struct Engine<M: FrozenScorer> {
    model: M,
    mode: Mode,
    sessions: Mutex<HashMap<u64, Session<M::State>>>,
    /// Optional ANN index for [`TopK::Ann`] requests in [`Mode::Full`].
    ann: Option<HnswIndex>,
    /// Default retrieval when a request carries no preference.
    default_topk: TopK,
    /// Cold-start ranking `(item, score)`, best first, for empty
    /// histories. `None` falls back to fixed item-id order with zero
    /// scores.
    popularity: Option<Vec<(ItemId, f32)>>,
}

impl<M: FrozenScorer> Engine<M> {
    /// Wraps a frozen model.
    pub fn new(model: M, mode: Mode) -> Self {
        Engine {
            model,
            mode,
            sessions: Mutex::new(HashMap::new()),
            ann: None,
            default_topk: TopK::Exact,
            popularity: None,
        }
    }

    /// Attaches an ANN index over the model's item embeddings, enabling
    /// [`TopK::Ann`] retrieval in [`Mode::Full`].
    pub fn with_ann(mut self, index: HnswIndex) -> Self {
        self.ann = Some(index);
        self
    }

    /// Sets the retrieval used when a request carries no preference.
    pub fn with_default_topk(mut self, topk: TopK) -> Self {
        self.default_topk = topk;
        self
    }

    /// Installs the cold-start ranking from per-item interaction counts
    /// (indexed by item id; index 0 = padding, ignored). Ties break
    /// towards the lower item id; scores are the popularity fractions.
    /// Without this, cold-start responses rank by fixed item-id order
    /// with zero scores — deterministic either way.
    pub fn with_popularity(mut self, counts: &[u64]) -> Self {
        let total: u64 = counts.iter().skip(1).sum();
        let mut ranked: Vec<(ItemId, f32)> = counts
            .iter()
            .enumerate()
            .skip(1)
            .map(|(item, &c)| {
                let score = if total == 0 {
                    0.0
                } else {
                    c as f32 / total as f32
                };
                (item, score)
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        self.popularity = Some(ranked);
        self
    }

    /// The attached ANN index, if any.
    pub fn ann(&self) -> Option<&HnswIndex> {
        self.ann.as_ref()
    }

    /// The serving mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The frozen model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The deterministic cold-start top-k for an empty history: the
    /// popularity ranking when installed, otherwise fixed item-id order
    /// (`1, 2, …`) with zero scores. Padding id 0 is never included.
    pub fn cold_start_top_k(&self, k: usize) -> (Vec<ItemId>, Vec<f32>) {
        match &self.popularity {
            Some(ranked) => ranked.iter().take(k).copied().unzip(),
            None => {
                let n = self.model.num_items();
                let items: Vec<ItemId> = (1..=n).take(k).collect();
                let scores = vec![0.0; items.len()];
                (items, scores)
            }
        }
    }

    /// Number of live sessions.
    pub fn num_sessions(&self) -> usize {
        self.lock_sessions().len()
    }

    /// Runs one synthetic scoring pass through every serving path before
    /// real traffic, so first-request latency doesn't pay the cold-path
    /// costs (populating `tensor::pool` size classes, faulting in frozen
    /// weights, one-time SIMD feature detection). No session is created
    /// and no metrics are recorded; results are discarded.
    ///
    /// This exists because the BENCH_6 load phase showed a ~50× p99/p50
    /// ratio traced entirely to the first requests hitting empty pools.
    pub fn warm_up(&self) {
        let n = self.model.num_items();
        if n == 0 {
            return;
        }
        let cap = self.model.window_cap();
        let len = if cap == 0 { 8 } else { cap.min(8) };
        let history: Vec<ItemId> = (0..len).map(|i| 1 + i % n).collect();
        // Full path: pads to the model's window internally, so this
        // exercises the same shapes as any production Score request.
        let scores = self.model.score_full(&history);
        debug_assert_eq!(scores.len(), n + 1);
        if let (Some(index), Some(q)) = (&self.ann, self.model.query_embedding(&history)) {
            let _ = index.search(&q, 10, 0);
        }
        if self.mode == Mode::Incremental {
            let (mut state, _) = self.model.begin(&history);
            if cap == 0 || self.model.state_len(&state) < cap {
                let _ = self.model.append_batch(&[1 + len % n], &mut [&mut state]);
            }
        }
    }

    fn lock_sessions(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Session<M::State>>> {
        self.sessions.lock().or_bug("sessions lock poisoned")
    }

    /// The incremental window for a history: the last `window_cap` items
    /// (or everything, when uncapped).
    fn window<'a>(&self, history: &'a [ItemId]) -> &'a [ItemId] {
        let cap = self.model.window_cap();
        if cap == 0 {
            history
        } else {
            &history[history.len().saturating_sub(cap)..]
        }
    }

    /// Scores a batch of requests, returning responses in request order.
    ///
    /// In [`Mode::Incremental`], runs of appendable requests for distinct
    /// users are coalesced into single batched cache-extension steps.
    pub fn handle_batch(&self, requests: &[Request]) -> Vec<Response> {
        self.handle_batch_obs(requests, false).0
    }

    /// [`Engine::handle_batch`] plus a per-request [`ReqObs`] report.
    ///
    /// `timed` turns on phase timing (forward / retrieve wall-clock); pass
    /// `false` on the untraced hot path so no clocks are read.
    pub fn handle_batch_obs(
        &self,
        requests: &[Request],
        timed: bool,
    ) -> (Vec<Response>, Vec<ReqObs>) {
        metrics::counter("serve.requests", false).add(requests.len() as u64);
        metrics::histogram("serve.batch.size", false).record(requests.len() as u64);
        let mut out: Vec<Option<Response>> = requests.iter().map(|_| None).collect();
        let mut obs: Vec<ReqObs> = vec![ReqObs::default(); requests.len()];
        match self.mode {
            Mode::Full => {
                for (i, req) in requests.iter().enumerate() {
                    let (resp, o) = self.handle_full(req, timed);
                    out[i] = Some(resp);
                    obs[i] = o;
                }
            }
            Mode::Incremental => {
                // Coalesce appendable requests (distinct users with live,
                // non-full state) into one batched step; everything else
                // flushes the group and runs alone.
                let mut group: Vec<(usize, u64, ItemId, usize)> = Vec::new();
                for (i, req) in requests.iter().enumerate() {
                    // ANN retrieval only exists in [`Mode::Full`]; a request
                    // preferring it is served exact here, and that *is* a
                    // fallback — count it exactly once per request, before
                    // the fast/slow split (both paths are exact).
                    if req.topk().unwrap_or(self.default_topk) == TopK::Ann {
                        metrics::counter("serve.ann.fallback", false).inc();
                        obs[i].ann_fallback = true;
                    }
                    let fast = match req {
                        Request::Append { user, item, k, .. } => {
                            if self.can_fast_append(*user) && !group.iter().any(|g| g.1 == *user) {
                                group.push((i, *user, *item, *k));
                                true
                            } else {
                                false
                            }
                        }
                        Request::Score { .. } => false,
                    };
                    if !fast {
                        self.flush_appends(&mut group, &mut out, &mut obs, timed);
                        let (resp, o) = self.handle_slow(req, timed);
                        out[i] = Some(resp);
                        // Merge: keep the fallback flag set above.
                        obs[i] = ReqObs {
                            ann_fallback: obs[i].ann_fallback,
                            ..o
                        };
                    }
                }
                self.flush_appends(&mut group, &mut out, &mut obs, timed);
            }
        }
        let responses = out
            .into_iter()
            .map(|r| r.or_bug("every request answered"))
            .collect();
        (responses, obs)
    }

    /// Full mode: every request re-encodes its padded window. Requests
    /// preferring [`TopK::Ann`] retrieve through the HNSW index instead of
    /// the full-catalog projection (falling back to exact when no index or
    /// query embedding is available).
    fn handle_full(&self, req: &Request, timed: bool) -> (Response, ReqObs) {
        let mut obs = ReqObs::default();
        let user = req.user();
        let history = {
            let mut sessions = self.lock_sessions();
            let session = sessions.entry(user).or_insert_with(|| Session {
                history: Vec::new(),
                state: None,
            });
            match req {
                Request::Score { history, .. } => session.history = history.clone(),
                Request::Append { item, .. } => session.history.push(*item),
            }
            session.history.clone()
        };
        if history.is_empty() {
            metrics::counter("serve.cold_start", false).inc();
            obs.cold_start = true;
            let ((items, scores), retrieve_ns) = timed_ns(timed, || self.cold_start_top_k(req.k()));
            obs.retrieve_ns = retrieve_ns;
            return (
                Response {
                    user,
                    items,
                    scores,
                },
                obs,
            );
        }
        if req.topk().unwrap_or(self.default_topk) == TopK::Ann {
            if let Some(resp) = self.handle_ann(user, &history, req.k(), timed, &mut obs) {
                obs.ann = true;
                return (resp, obs);
            }
            metrics::counter("serve.ann.fallback", false).inc();
            obs.ann_fallback = true;
        }
        metrics::counter("serve.cache.miss", false).inc();
        metrics::counter("serve.reencode", false).inc();
        obs.reencode = true;
        let (scores, forward_ns) = timed_ns(timed, || self.model.score_full(&history));
        obs.forward_ns = forward_ns;
        let ((items, scores), retrieve_ns) = timed_ns(timed, || top_k(&scores, req.k()));
        obs.retrieve_ns = retrieve_ns;
        (
            Response {
                user,
                items,
                scores,
            },
            obs,
        )
    }

    /// ANN retrieval: encode the window to its query embedding, then
    /// search the index. `None` when the engine has no index or the model
    /// does not expose query embeddings.
    fn handle_ann(
        &self,
        user: u64,
        history: &[ItemId],
        k: usize,
        timed: bool,
        obs: &mut ReqObs,
    ) -> Option<Response> {
        let index = self.ann.as_ref()?;
        let (q, forward_ns) = timed_ns(timed, || self.model.query_embedding(history));
        let q = q?;
        obs.forward_ns = forward_ns;
        metrics::counter("serve.ann.query", false).inc();
        metrics::counter("serve.reencode", false).inc();
        obs.reencode = true;
        let (found, retrieve_ns) = timed_ns(timed, || index.search(&q, k, 0));
        obs.retrieve_ns = retrieve_ns;
        let (items, scores) = found.into_iter().unzip();
        Some(Response {
            user,
            items,
            scores,
        })
    }

    /// True when an append can extend cached state without a re-encode.
    fn can_fast_append(&self, user: u64) -> bool {
        let cap = self.model.window_cap();
        let sessions = self.lock_sessions();
        sessions.get(&user).is_some_and(|s| {
            s.state
                .as_ref()
                .is_some_and(|st| cap == 0 || self.model.state_len(st) < cap)
        })
    }

    /// Runs one batched append over the grouped requests.
    ///
    /// Phase attribution: the batched cache-extension step is one model
    /// call shared by the whole group, so every grouped request reports
    /// the same `forward_ns` (the step's duration); per-request `top_k`
    /// ranking is timed individually.
    fn flush_appends(
        &self,
        group: &mut Vec<(usize, u64, ItemId, usize)>,
        out: &mut [Option<Response>],
        obs: &mut [ReqObs],
        timed: bool,
    ) {
        if group.is_empty() {
            return;
        }
        let mut taken: Vec<(u64, Session<M::State>)> = {
            let mut sessions = self.lock_sessions();
            group
                .iter()
                .map(|&(_, user, _, _)| {
                    let s = sessions
                        .remove(&user)
                        .or_bug("session checked in can_fast_append");
                    (user, s)
                })
                .collect()
        };
        let items: Vec<ItemId> = group.iter().map(|&(_, _, item, _)| item).collect();
        let (scores, forward_ns) = timed_ns(timed, || {
            let mut states: Vec<&mut M::State> = taken
                .iter_mut()
                .map(|(_, s)| s.state.as_mut().or_bug("state checked in can_fast_append"))
                .collect();
            self.model.append_batch(&items, &mut states)
        });
        metrics::counter("serve.cache.hit", false).add(group.len() as u64);
        for (((idx, user, item, k), (_, session)), user_scores) in
            group.iter().zip(taken.iter_mut()).zip(scores)
        {
            session.history.push(*item);
            let ((items, scores), retrieve_ns) = timed_ns(timed, || top_k(&user_scores, *k));
            obs[*idx].cache_hit = true;
            obs[*idx].forward_ns = forward_ns;
            obs[*idx].retrieve_ns = retrieve_ns;
            out[*idx] = Some(Response {
                user: *user,
                items,
                scores,
            });
        }
        let mut sessions = self.lock_sessions();
        for (user, session) in taken {
            sessions.insert(user, session);
        }
        group.clear();
    }

    /// Incremental mode, slow path: (re)encode the window from scratch —
    /// new histories, unknown users, and cache overflow (the slide).
    fn handle_slow(&self, req: &Request, timed: bool) -> (Response, ReqObs) {
        let mut obs = ReqObs::default();
        let user = req.user();
        let history = {
            let mut sessions = self.lock_sessions();
            let session = sessions.entry(user).or_insert_with(|| Session {
                history: Vec::new(),
                state: None,
            });
            match req {
                Request::Score { history, .. } => session.history = history.clone(),
                Request::Append { item, .. } => session.history.push(*item),
            }
            session.history.clone()
        };
        let window = self.window(&history);
        if window.is_empty() {
            // An empty history has no hidden state to score from; serve
            // the deterministic cold-start ranking instead of the
            // meaningless all-zero catalog the encoder would produce.
            // Not a cache miss: there is nothing the cache could have held
            // (mirrors the cold-start accounting in `handle_full`).
            metrics::counter("serve.cold_start", false).inc();
            obs.cold_start = true;
            let ((items, scores), retrieve_ns) = timed_ns(timed, || self.cold_start_top_k(req.k()));
            obs.retrieve_ns = retrieve_ns;
            return (
                Response {
                    user,
                    items,
                    scores,
                },
                obs,
            );
        }
        metrics::counter("serve.cache.miss", false).inc();
        metrics::counter("serve.reencode", false).inc();
        obs.reencode = true;
        let ((state, scores), forward_ns) = timed_ns(timed, || self.model.begin(window));
        obs.forward_ns = forward_ns;
        self.lock_sessions()
            .get_mut(&user)
            .or_bug("session inserted above")
            .state = Some(state);
        let ((items, scores), retrieve_ns) = timed_ns(timed, || top_k(&scores, req.k()));
        obs.retrieve_ns = retrieve_ns;
        (
            Response {
                user,
                items,
                scores,
            },
            obs,
        )
    }
}

//! TCP front end: line-delimited JSON over per-connection threads, all
//! funneled through one [`Batcher`] so concurrent connections share
//! batches.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use crate::batcher::Batcher;
use crate::engine::FrozenScorer;
use crate::proto::{format_error, format_response, parse_request, Incoming, PONG};

/// Accepts connections forever, one thread per connection.
///
/// Returns only when the listener errors (e.g. the socket is closed).
pub fn run<M: FrozenScorer>(
    listener: TcpListener,
    batcher: Arc<Batcher<M>>,
) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let batcher = Arc::clone(&batcher);
        std::thread::spawn(move || {
            // A dropped connection mid-request is the client's problem.
            let _ = handle_connection(stream, &batcher);
        });
    }
    Ok(())
}

fn handle_connection<M: FrozenScorer>(
    stream: TcpStream,
    batcher: &Batcher<M>,
) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = match parse_request(&line) {
            Ok(Incoming::Ping) => PONG.to_string(),
            Ok(Incoming::Req(req)) => format_response(&batcher.submit(req)),
            Err(e) => format_error(&e),
        };
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

//! TCP front end: line-delimited JSON over per-connection threads, all
//! funneled through one [`Batcher`] so concurrent connections share
//! batches. With a [`ServeObs`] attached ([`run_obs`]), every request is
//! metered (latency sketch, SLO windows) and a deterministic 1-in-N
//! sample carries a full phase trace; `"admin"` requests are answered
//! directly from the observer without entering the batcher.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Instant;

use crate::batcher::Batcher;
use crate::engine::{FrozenScorer, Request};
use crate::obs::{ReqCtx, ServeObs};
use crate::proto::{format_error, format_response, parse_request, AdminCmd, Incoming, PONG};

/// Accepts connections forever, one thread per connection.
///
/// Returns only when the listener errors (e.g. the socket is closed).
pub fn run<M: FrozenScorer>(
    listener: TcpListener,
    batcher: Arc<Batcher<M>>,
) -> std::io::Result<()> {
    run_obs(listener, batcher, None)
}

/// [`run`] with request observability: when `obs` is present, every
/// request feeds the latency sketch and SLO windows, sampled requests
/// emit trace spans, and `"admin"` queries return live snapshots.
pub fn run_obs<M: FrozenScorer>(
    listener: TcpListener,
    batcher: Arc<Batcher<M>>,
    obs: Option<Arc<ServeObs>>,
) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let batcher = Arc::clone(&batcher);
        let obs = obs.clone();
        std::thread::spawn(move || {
            // A dropped connection mid-request is the client's problem.
            let _ = handle_connection(stream, &batcher, obs.as_deref());
        });
    }
    Ok(())
}

fn admin_reply(obs: Option<&ServeObs>, cmd: AdminCmd) -> String {
    match obs {
        None => format_error("observability disabled (no admin endpoint)"),
        Some(obs) => match cmd {
            AdminCmd::Snapshot => obs.snapshot_json(),
            AdminCmd::Health => obs.health_json(),
            AdminCmd::Prom => obs.prom_json(),
        },
    }
}

fn handle_connection<M: FrozenScorer>(
    stream: TcpStream,
    batcher: &Batcher<M>,
    obs: Option<&ServeObs>,
) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = match parse_request(&line) {
            Ok(Incoming::Ping) => PONG.to_string(),
            Ok(Incoming::Admin(cmd)) => admin_reply(obs, cmd),
            Ok(Incoming::Req(req)) => match obs {
                None => format_response(&batcher.submit(req)),
                Some(obs) => {
                    let id = obs.next_id();
                    let sampled = obs.sampled(id);
                    let (op, user) = match &req {
                        Request::Score { user, .. } => ("score", *user),
                        Request::Append { user, .. } => ("append", *user),
                    };
                    let start = Instant::now();
                    let (resp, report) = batcher.submit_obs(req, sampled);
                    let ser_start = Instant::now();
                    let text = format_response(&resp);
                    let serialize_ns = ser_start.elapsed().as_nanos() as u64;
                    obs.complete(&ReqCtx {
                        id,
                        op,
                        user,
                        sampled,
                        total_ns: start.elapsed().as_nanos() as u64,
                        enqueue_ns: report.enqueue_ns,
                        assemble_ns: report.assemble_ns,
                        serialize_ns,
                        obs: report.obs,
                    });
                    text
                }
            },
            Err(e) => format_error(&e),
        };
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

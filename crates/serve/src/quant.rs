//! Load-time weight quantisation with a measured parity gate.
//!
//! `msgc serve --quantize bf16|int8` shrinks the resident frozen-weight
//! bytes (the item table dominates) by re-encoding every weight matrix.
//! Quantisation changes served score bits, so it is **never** silent:
//! [`quantize_gated`] first records the f32 top-k rankings on a set of
//! probe histories, re-encodes, re-scores, and refuses to serve unless
//! the quantised rankings pass the mode's gate:
//!
//! * **bf16** — every probe must return the *exact* f32 top-k item set,
//!   in the f32 order except across bf16-precision ties (f32 score gaps
//!   under [`BF16_TIE_REL_TOL`], which one re-encoding ulp can
//!   legitimately flip). bf16 keeps f32's exponent range and ~3
//!   significant decimal digits, which preserves every trained ranking
//!   margin wider than that.
//! * **int8** — per-row symmetric scaling is coarser; the gate requires
//!   at least [`INT8_MIN_OVERLAP`] mean top-k overlap per probe.
//!
//! Both modes must also actually deliver the footprint: at least
//! [`MIN_BYTES_REDUCTION`] of the f32 resident weight bytes saved.

use recdata::ItemId;
use tensor::QuantMode;

use crate::engine::{top_k, FrozenScorer};
use nn::{InferModule, Quantize};

/// Ranking depth the parity gate checks.
pub const GATE_TOP_K: usize = 10;

/// Minimum fraction of resident weight bytes a non-f32 mode must save.
pub const MIN_BYTES_REDUCTION: f64 = 0.40;

/// Minimum top-k overlap (as a fraction) any single probe may show
/// under int8.
pub const INT8_MIN_OVERLAP: f64 = 0.8;

/// Relative f32 score gap below which two items count as *tied at bf16
/// precision*: one bf16 ulp is 2⁻⁸ of the magnitude and both GEMM
/// operands are rounded, so items closer than ~2⁻⁷ can legitimately
/// swap order after re-encoding. The bf16 gate demands the top-k **set**
/// match exactly on every probe and that any order difference involve
/// only such ties — a swap across a wider margin means real ranking
/// damage and is refused.
pub const BF16_TIE_REL_TOL: f32 = 1.0 / 128.0;

/// Outcome of a gated quantisation, for operator-facing logging.
#[derive(Debug, Clone)]
pub struct QuantReport {
    /// The encoding that was applied.
    pub mode: QuantMode,
    /// Resident weight bytes before (dense f32).
    pub f32_bytes: usize,
    /// Resident weight bytes after re-encoding.
    pub quant_bytes: usize,
    /// Number of probe histories scored on both sides.
    pub probes: usize,
    /// Probes whose top-k item ranking matched f32 exactly.
    pub exact_topk: usize,
    /// Smallest top-k overlap fraction across probes (1.0 when all exact).
    pub min_overlap: f64,
}

impl QuantReport {
    /// Fraction of resident weight bytes saved.
    pub fn bytes_saved(&self) -> f64 {
        if self.f32_bytes == 0 {
            0.0
        } else {
            1.0 - self.quant_bytes as f64 / self.f32_bytes as f64
        }
    }
}

impl std::fmt::Display for QuantReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "quantize {}: {} -> {} weight bytes ({:.1}% saved), \
             {}/{} probes exact top-{}, min overlap {:.2}",
            self.mode,
            self.f32_bytes,
            self.quant_bytes,
            self.bytes_saved() * 100.0,
            self.exact_topk,
            self.probes,
            GATE_TOP_K,
            self.min_overlap,
        )
    }
}

/// True when `got` differs from the f32 ranking `want` by more than
/// bf16-precision ties: a missing item, or a position swap between two
/// items whose f32 scores are further apart than [`BF16_TIE_REL_TOL`].
fn has_untied_reorder(want: &[ItemId], want_scores: &[f32], got: &[ItemId]) -> bool {
    let score_of = |item: ItemId| -> Option<f32> {
        want.iter().position(|&w| w == item).map(|i| want_scores[i])
    };
    for (i, &g) in got.iter().enumerate() {
        if g == want[i] {
            continue;
        }
        let (Some(a), Some(b)) = (score_of(g), score_of(want[i])) else {
            return true; // item fell out of the top-k entirely
        };
        if (a - b).abs() > BF16_TIE_REL_TOL * a.abs().max(b.abs()) {
            return true;
        }
    }
    false
}

/// Fraction of `a`'s items also present in `b` (order-insensitive).
fn overlap(a: &[ItemId], b: &[ItemId]) -> f64 {
    if a.is_empty() {
        return 1.0;
    }
    let hits = a.iter().filter(|i| b.contains(i)).count();
    hits as f64 / a.len() as f64
}

/// Re-encodes a frozen model's weights to `mode`, gating on ranking
/// parity against the f32 original over `probes` (real user histories).
///
/// [`QuantMode::F32`] is an exact no-op and always succeeds. For bf16 and
/// int8 the model is scored on every probe before and after re-encoding;
/// a gate failure returns `Err` with the model already re-encoded — the
/// caller must treat that as fatal for serving (the engine would serve
/// rankings that measurably diverge from the checkpoint).
pub fn quantize_gated<M>(
    model: &mut M,
    mode: QuantMode,
    probes: &[Vec<ItemId>],
) -> Result<QuantReport, String>
where
    M: FrozenScorer + Quantize + InferModule,
{
    let f32_bytes = model.weight_bytes();
    if mode == QuantMode::F32 {
        return Ok(QuantReport {
            mode,
            f32_bytes,
            quant_bytes: f32_bytes,
            probes: 0,
            exact_topk: 0,
            min_overlap: 1.0,
        });
    }
    if probes.is_empty() {
        return Err(format!(
            "quantize {mode}: no probe histories available for the parity gate"
        ));
    }
    let baseline: Vec<(Vec<ItemId>, Vec<f32>)> = probes
        .iter()
        .map(|h| top_k(&model.score_full(h), GATE_TOP_K))
        .collect();
    model.quantize(mode);
    let quant_bytes = model.weight_bytes();

    let mut exact_topk = 0usize;
    let mut min_overlap = 1.0f64;
    let mut untied_reorder = false;
    for (history, (want, want_scores)) in probes.iter().zip(&baseline) {
        let (got, _) = top_k(&model.score_full(history), GATE_TOP_K);
        if got == *want {
            exact_topk += 1;
        } else {
            untied_reorder |= has_untied_reorder(want, want_scores, &got);
        }
        min_overlap = min_overlap.min(overlap(want, &got));
    }
    let report = QuantReport {
        mode,
        f32_bytes,
        quant_bytes,
        probes: probes.len(),
        exact_topk,
        min_overlap,
    };

    if report.bytes_saved() < MIN_BYTES_REDUCTION {
        return Err(format!(
            "{report} — FAILED bytes gate: saved {:.1}% < required {:.0}%",
            report.bytes_saved() * 100.0,
            MIN_BYTES_REDUCTION * 100.0
        ));
    }
    match mode {
        QuantMode::Bf16 if report.min_overlap < 1.0 || untied_reorder => Err(format!(
            "{report} — FAILED parity gate: bf16 requires the exact top-{GATE_TOP_K} set on \
             every probe, reordered only across bf16-precision ties"
        )),
        QuantMode::Int8 if report.min_overlap < INT8_MIN_OVERLAP => Err(format!(
            "{report} — FAILED parity gate: int8 requires ≥{INT8_MIN_OVERLAP} top-{GATE_TOP_K} \
             overlap on every probe"
        )),
        _ => Ok(report),
    }
}

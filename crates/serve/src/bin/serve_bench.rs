//! Serving benchmark and parity client (BENCH_6 + BENCH_10).
//!
//! Two modes:
//!
//! * **Bench** (default): in-process load generation against the batching
//!   engine. Reports p50/p99 request latency and sustained throughput, and
//!   gates on the incremental append being at least 5× faster than a full
//!   re-encode of the same window on the transformer backbone. Writes
//!   `BENCH_6.json` into the current directory and exits nonzero when the
//!   gate fails.
//!
//!   The same run also writes `BENCH_10.json` (serving observability):
//!
//!   * `sketch` — the streaming DDSketch p50/p99 over the loadgen
//!     latencies vs the exact sorted quantiles, gated on the sketch's
//!     relative-error bound;
//!   * `tracing` — per-request cost of the full observability path
//!     (request ids, phase timing, 1-in-16 span emission) vs the bare
//!     batcher, gated on a generous overhead budget;
//!   * `disabled` — per-request cost with the telemetry registry enabled
//!     vs disabled (reported against the ≤2% budget; the hard guarantee
//!     is the zero-allocation test in `telemetry/tests/alloc.rs`).
//!
//!   ```sh
//!   cargo run --release -p serve --bin serve_bench
//!   ```
//!
//!   Geometry scales with `META_SGCL_SCALE` (`quick`/`full`).
//!
//! * **Check** (`--connect ADDR`): connects to a running `msgc serve`,
//!   replays user histories from `--data`, and asserts the served top-k
//!   (items *and* scores) is bitwise-identical to the offline autograd
//!   `score_sequence` on the same checkpoint. Exits nonzero on any
//!   mismatch. Used by the CI `serve-smoke` job.
//!
//!   ```sh
//!   serve_bench --connect 127.0.0.1:7878 --data synth:toys:42 \
//!       --model model.msgc --dim 16 --max-len 10 --users 20 --k 10
//!   ```
//!
//!   With `--ann-recall MIN` the check additionally replays every user's
//!   history as a `"topk":"ann"` request and gates mean recall@k of the
//!   served ANN top-k against the offline exact top-k (set overlap, not
//!   scores — ANN is recall-gated, not bitwise). Requires the server to
//!   have been started with `--ann`.
//!
//!   With `--admin-out FILE` the check additionally fetches the server's
//!   admin snapshot (`{"op":"admin","cmd":"snapshot"}`), validates it
//!   against the telemetry schema, and writes the raw line to `FILE` for
//!   the CI artifact. Requires the server to expose the admin endpoint
//!   (`msgc serve` with observability on).

#![allow(clippy::expect_used)] // CI smoke binary: panicking with context IS the failure path

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use meta_sgcl::{MetaSgcl, MetaSgclConfig};
use models::NetConfig;
use nn::Freeze;
use serve::{proto, top_k, Batcher, Engine, Mode, Request};

fn quantile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn parse_args() -> std::collections::HashMap<String, String> {
    let mut out = std::collections::HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if let Some(name) = a.strip_prefix("--") {
            let v = args.next().unwrap_or_default();
            out.insert(name.to_string(), v);
        }
    }
    out
}

fn get_or<T: std::str::FromStr>(
    args: &std::collections::HashMap<String, String>,
    key: &str,
    default: T,
) -> T {
    args.get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args = parse_args();
    let code = if args.contains_key("connect") {
        run_check(&args)
    } else {
        run_bench(&args)
    };
    std::process::exit(code);
}

// ---------------------------------------------------------------------------
// Bench mode
// ---------------------------------------------------------------------------

fn run_bench(args: &std::collections::HashMap<String, String>) -> i32 {
    let scale = std::env::var("META_SGCL_SCALE").unwrap_or_else(|_| "quick".into());
    let full_scale = scale == "full";
    // Transformer-backbone geometry: long enough that a full window
    // re-encode dwarfs a single-row append.
    let max_len = if full_scale { 128 } else { 64 };
    let dim = 32;
    let num_items = 500;
    let appends = get_or(args, "requests", if full_scale { 400 } else { 120 });
    let loadgen_threads = 8usize;
    let loadgen_per_thread = if full_scale { 200 } else { 60 };

    let model = MetaSgcl::new(MetaSgclConfig {
        net: NetConfig {
            max_len,
            dim,
            layers: 2,
            ..NetConfig::for_items(num_items)
        },
        ..MetaSgclConfig::for_items(num_items)
    });
    let frozen = model.freeze();
    let history: Vec<usize> = (0..max_len - 1).map(|i| 1 + (i * 7) % num_items).collect();

    // --- single-request speedup gate: full window re-encode vs one append.
    let window = &history[..max_len - 1];
    let mut full_ms = f64::INFINITY;
    for _ in 0..3 {
        let iters = 10;
        let t0 = Instant::now();
        for _ in 0..iters {
            let (_state, scores) = frozen.begin_incremental(window);
            assert_eq!(scores.len(), num_items + 1);
        }
        full_ms = full_ms.min(t0.elapsed().as_secs_f64() * 1e3 / iters as f64);
    }

    let mut incr_samples: Vec<f64> = Vec::with_capacity(appends);
    let mut done = 0usize;
    'outer: loop {
        // Re-begin with room to append without sliding.
        let (mut state, _) = frozen.begin_incremental(&history[..max_len / 2]);
        while state.len() < max_len {
            let item = 1 + (state.len() * 13) % num_items;
            let t0 = Instant::now();
            let scores = frozen.append_incremental(&[item], &mut [&mut state]);
            incr_samples.push(t0.elapsed().as_secs_f64() * 1e3);
            assert_eq!(scores[0].len(), num_items + 1);
            done += 1;
            if done >= appends {
                break 'outer;
            }
        }
    }
    incr_samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let incr_p50 = quantile_ms(&incr_samples, 0.5);
    let speedup = full_ms / incr_p50;

    // --- load generator: concurrent users through the micro-batcher.
    telemetry::set_enabled(true);
    let engine = Arc::new(Engine::new(frozen, Mode::Incremental));
    // Mirror production: warm the pools and dispatch probes before the
    // measured phase, so p99 reflects steady state rather than the
    // first-request cold path (the BENCH_6 tail diagnosis).
    engine.warm_up();
    let batcher = Arc::new(Batcher::new(
        Arc::clone(&engine),
        16,
        Duration::from_micros(200),
    ));
    let t0 = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..loadgen_threads)
            .map(|t| {
                let b = Arc::clone(&batcher);
                let seed_history: Vec<usize> = (0..max_len / 2)
                    .map(|i| 1 + (i * 3 + t) % num_items)
                    .collect();
                s.spawn(move || {
                    let mut lats = Vec::with_capacity(loadgen_per_thread + 1);
                    let user = t as u64;
                    let t1 = Instant::now();
                    b.submit(Request::Score {
                        user,
                        history: seed_history,
                        k: 10,
                        topk: None,
                    });
                    lats.push(t1.elapsed().as_secs_f64() * 1e3);
                    for i in 0..loadgen_per_thread {
                        let item = 1 + (i * 11 + t) % num_items;
                        let t1 = Instant::now();
                        b.submit(Request::Append {
                            user,
                            item,
                            k: 10,
                            topk: None,
                        });
                        lats.push(t1.elapsed().as_secs_f64() * 1e3);
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("loadgen thread"))
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let total_requests = latencies.len();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let p50 = quantile_ms(&latencies, 0.5);
    let p99 = quantile_ms(&latencies, 0.99);
    let rps = total_requests as f64 / wall_s;
    // Queueing delay the micro-batcher added (first-job receipt → batch
    // dispatch). Distinguishes coalescing wait from scoring time when
    // reading the p99 tail.
    let (wait_count, wait_sum, _) =
        telemetry::metrics::histogram("serve.batch.wait_us", false).totals();
    let wait_mean_us = if wait_count > 0 {
        wait_sum as f64 / wait_count as f64
    } else {
        0.0
    };

    const GATE: f64 = 5.0;
    let pass = speedup >= GATE;
    let json = format!(
        "{{\n  \"bench\": \"BENCH_6\",\n  \"scale\": \"{scale}\",\n  \
         \"geometry\": {{\"dim\": {dim}, \"layers\": 2, \"max_len\": {max_len}, \"num_items\": {num_items}}},\n  \
         \"loadgen\": {{\"threads\": {loadgen_threads}, \"requests\": {total_requests}, \
         \"p50_ms\": {p50:.4}, \"p99_ms\": {p99:.4}, \"throughput_rps\": {rps:.1}, \
         \"batches\": {wait_count}, \"batch_wait_mean_us\": {wait_mean_us:.1}}},\n  \
         \"incremental_vs_full\": {{\"full_reencode_ms\": {full_ms:.4}, \
         \"incremental_append_ms\": {incr_p50:.4}, \"speedup\": {speedup:.2}, \
         \"gate\": {GATE:.1}, \"pass\": {pass}}}\n}}\n"
    );
    std::fs::write("BENCH_6.json", &json).expect("write BENCH_6.json");
    print!("{json}");

    let obs_pass = run_bench10(&engine, &latencies, full_scale);

    if !pass {
        eprintln!("GATE FAILED: incremental speedup {speedup:.2}x < {GATE}x");
    }
    i32::from(!(pass && obs_pass))
}

// ---------------------------------------------------------------------------
// BENCH_10: observability cost and accuracy
// ---------------------------------------------------------------------------

/// One timed pass of `n` scoring requests for `user` through the batcher,
/// optionally through the full observability path. Every request scores
/// the same short window, so per-request cost is identical across passes
/// (appends would slide into re-encodes once the window cap fills).
/// Returns µs/request.
fn timed_pass(
    batcher: &Batcher<impl serve::FrozenScorer>,
    obs: Option<&serve::ServeObs>,
    user: u64,
    n: usize,
    num_items: usize,
) -> f64 {
    let history: Vec<usize> = (0..8).map(|i| 1 + (i * 7) % num_items).collect();
    let t0 = Instant::now();
    for _ in 0..n {
        let req = Request::Score {
            user,
            history: history.clone(),
            k: 10,
            topk: None,
        };
        match obs {
            None => {
                batcher.submit(req);
            }
            Some(obs) => {
                // The same sequence `server::run_obs` performs per request.
                let id = obs.next_id();
                let sampled = obs.sampled(id);
                let t1 = Instant::now();
                let (resp, report) = batcher.submit_obs(req, sampled);
                let ser = Instant::now();
                let text = serve::proto::format_response(&resp);
                std::hint::black_box(&text);
                obs.complete(&serve::ReqCtx {
                    id,
                    op: "score",
                    user,
                    sampled,
                    total_ns: t1.elapsed().as_nanos() as u64,
                    enqueue_ns: report.enqueue_ns,
                    assemble_ns: report.assemble_ns,
                    serialize_ns: ser.elapsed().as_nanos() as u64,
                    obs: report.obs,
                });
            }
        }
    }
    t0.elapsed().as_secs_f64() * 1e6 / n as f64
}

fn run_bench10(
    engine: &Arc<Engine<impl serve::FrozenScorer>>,
    loadgen_latencies_ms: &[f64],
    full_scale: bool,
) -> bool {
    // --- sketch accuracy: streaming DDSketch vs exact sorted quantiles
    // over the BENCH_6 loadgen latencies (integer µs, like the serving
    // sketch records).
    let us: Vec<u64> = loadgen_latencies_ms
        .iter()
        .map(|ms| (ms * 1e3) as u64)
        .collect();
    let sketch = telemetry::DdSketch::new(telemetry::sketch::DEFAULT_ALPHA);
    for &v in &us {
        sketch.record(v);
    }
    let mut sorted = us;
    sorted.sort_unstable();
    let exact = |q: f64| sorted[((sorted.len() - 1) as f64 * q).floor() as usize] as f64;
    let rel = |est: f64, want: f64| (est - want).abs() / want.max(1.0);
    let n = sorted.len();
    let (p50_exact, p99_exact) = (exact(0.50), exact(0.99));
    let p50_sketch = sketch.quantile(0.50).expect("non-empty sketch");
    let p99_sketch = sketch.quantile(0.99).expect("non-empty sketch");
    let (rel_p50, rel_p99) = (rel(p50_sketch, p50_exact), rel(p99_sketch, p99_exact));
    // 2× the sketch's α: the bucket-midpoint guarantee plus integer-µs
    // truncation slack at small values.
    let bound = 2.0 * telemetry::sketch::DEFAULT_ALPHA;
    let sketch_pass = rel_p50 <= bound && rel_p99 <= bound;

    // --- observability overhead: a dedicated single-threaded batcher so
    // queueing noise from the loadgen doesn't pollute the comparison.
    let num_items = engine.model().num_items();
    let batcher = Batcher::new(Arc::clone(engine), 1, Duration::from_micros(0));
    let reqs = if full_scale { 1500 } else { 400 };
    let obs = serve::ServeObs::new(serve::ObsConfig {
        tracer: Some(Arc::new(telemetry::trace::Tracer::to_writer(Box::new(
            std::io::sink(),
        )))),
        sample_every: 16,
        ..serve::ObsConfig::default()
    });
    // Warm both paths, then best-of-5 each to shed scheduler noise.
    timed_pass(&batcher, None, 1001, 64, num_items);
    timed_pass(&batcher, Some(&obs), 1002, 64, num_items);
    let mut base_us = f64::INFINITY;
    let mut traced_us = f64::INFINITY;
    for _ in 0..5 {
        base_us = base_us.min(timed_pass(&batcher, None, 1001, reqs, num_items));
        traced_us = traced_us.min(timed_pass(&batcher, Some(&obs), 1002, reqs, num_items));
    }
    let tracing_overhead = (traced_us - base_us).max(0.0) / base_us;
    // Generous: covers id allocation, phase clocks, sketch/window updates,
    // and the 1-in-16 span emission, on a request path measured in tens of
    // µs — plus headroom for single-core CI hosts, where the requester and
    // batcher worker share one core and the min-of-5 ratio still jitters by
    // tens of percent (quiet-host measurements sit near 5%).
    let tracing_budget = 0.35;
    let tracing_pass = tracing_overhead <= tracing_budget;

    // --- disabled-registry cost: the same bare pass with telemetry
    // enabled vs disabled. Reported against the ≤2% budget; the binding
    // guarantee is telemetry's zero-allocation test, since a few hundred
    // ns of atomics sit below timer noise here.
    let mut enabled_us = f64::INFINITY;
    let mut disabled_us = f64::INFINITY;
    for _ in 0..3 {
        telemetry::set_enabled(true);
        enabled_us = enabled_us.min(timed_pass(&batcher, None, 1003, reqs, num_items));
        telemetry::set_enabled(false);
        disabled_us = disabled_us.min(timed_pass(&batcher, None, 1003, reqs, num_items));
    }
    telemetry::set_enabled(true);
    let disabled_overhead = (enabled_us - disabled_us).max(0.0) / disabled_us;
    let disabled_budget = 0.02;

    let pass = sketch_pass && tracing_pass;
    let json = format!(
        "{{\n  \"bench\": \"BENCH_10\",\n  \"pass\": {pass},\n  \
         \"sketch\": {{\"n\": {n}, \"p50_sketch_us\": {p50_sketch:.1}, \"p50_exact_us\": {p50_exact:.1}, \
         \"p99_sketch_us\": {p99_sketch:.1}, \"p99_exact_us\": {p99_exact:.1}, \
         \"rel_err_p50\": {rel_p50:.5}, \"rel_err_p99\": {rel_p99:.5}, \
         \"bound\": {bound:.3}, \"pass\": {sketch_pass}}},\n  \
         \"tracing\": {{\"requests\": {reqs}, \"base_us_per_req\": {base_us:.2}, \
         \"traced_us_per_req\": {traced_us:.2}, \"overhead_frac\": {tracing_overhead:.4}, \
         \"budget\": {tracing_budget:.2}, \"pass\": {tracing_pass}}},\n  \
         \"disabled\": {{\"requests\": {reqs}, \"enabled_us_per_req\": {enabled_us:.2}, \
         \"disabled_us_per_req\": {disabled_us:.2}, \"overhead_frac\": {disabled_overhead:.4}, \
         \"budget\": {disabled_budget:.2}}}\n}}\n"
    );
    telemetry::schema::validate_bench10(&json).expect("BENCH_10 self-validates");
    std::fs::write("BENCH_10.json", &json).expect("write BENCH_10.json");
    print!("{json}");
    if !sketch_pass {
        eprintln!(
            "GATE FAILED: sketch quantile error p50 {rel_p50:.5} / p99 {rel_p99:.5} exceeds {bound}"
        );
    }
    if !tracing_pass {
        eprintln!(
            "GATE FAILED: tracing overhead {tracing_overhead:.4} exceeds budget {tracing_budget}"
        );
    }
    pass
}

// ---------------------------------------------------------------------------
// Check mode
// ---------------------------------------------------------------------------

fn load_data(spec: &str) -> recdata::Dataset {
    let rest = spec
        .strip_prefix("synth:")
        .expect("check mode supports synth:<preset>:<seed> specs");
    let mut parts = rest.split(':');
    let preset = parts.next().unwrap_or("toys");
    let seed: u64 = parts.next().unwrap_or("42").parse().expect("seed");
    let cfg = match preset {
        "clothing" => recdata::synth::SynthConfig::clothing_like(seed),
        "ml1m" => recdata::synth::SynthConfig::ml1m_like(seed),
        _ => recdata::synth::SynthConfig::toys_like(seed),
    };
    recdata::synth::generate(&cfg)
}

fn run_check(args: &std::collections::HashMap<String, String>) -> i32 {
    let addr = args.get("connect").expect("--connect set").clone();
    let data_spec = args.get("data").expect("--data required");
    let model_path = args.get("model").expect("--model required");
    let dim: usize = get_or(args, "dim", 32);
    let max_len: usize = get_or(args, "max-len", 20);
    let seed: u64 = get_or(args, "seed", 42);
    let users: usize = get_or(args, "users", 20);
    let k: usize = get_or(args, "k", 10);
    let ann_recall_min: Option<f64> = args
        .get("ann-recall")
        .map(|v| v.parse().expect("--ann-recall is a fraction"));

    let data = load_data(data_spec);
    let mut model = MetaSgcl::new(MetaSgclConfig {
        net: NetConfig {
            dim,
            max_len,
            seed,
            ..NetConfig::for_items(data.num_items)
        },
        ..MetaSgclConfig::for_items(data.num_items)
    });
    model.load(model_path).expect("load checkpoint");

    let mut stream = TcpStream::connect(&addr).expect("connect to msgc serve");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));

    let mut send = |line: &str| -> String {
        stream.write_all(line.as_bytes()).expect("send");
        stream.write_all(b"\n").expect("send");
        stream.flush().expect("flush");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("recv");
        resp.trim().to_string()
    };

    assert_eq!(send(r#"{"op":"ping"}"#), proto::PONG, "server not ready");

    let mut checked = 0usize;
    let mut mismatches = 0usize;
    for (u, seq) in data.sequences.iter().enumerate() {
        if seq.len() < 2 {
            continue;
        }
        if checked >= users {
            break;
        }
        checked += 1;

        // Parity 1: full-history score request vs offline score_sequence.
        let prefix = &seq[..seq.len() - 1];
        let history_json: Vec<String> = prefix.iter().map(|i| i.to_string()).collect();
        let line = format!(
            "{{\"op\":\"score\",\"user\":{u},\"history\":[{}],\"k\":{k}}}",
            history_json.join(",")
        );
        let served = proto::parse_response(&send(&line)).expect("parse response");
        let (want_items, want_scores) = top_k(&model.score_sequence(prefix), k);
        if served.items != want_items || served.scores != want_scores {
            eprintln!(
                "MISMATCH user {u} (score): served {:?} want {:?}",
                (&served.items, &served.scores),
                (&want_items, &want_scores)
            );
            mismatches += 1;
            continue;
        }

        // Parity 2: append the held-out item vs offline on the full seq.
        let last = seq[seq.len() - 1];
        let line = format!("{{\"op\":\"append\",\"user\":{u},\"item\":{last},\"k\":{k}}}");
        let served = proto::parse_response(&send(&line)).expect("parse response");
        let (want_items, want_scores) = top_k(&model.score_sequence(seq), k);
        if served.items != want_items || served.scores != want_scores {
            eprintln!("MISMATCH user {u} (append)");
            mismatches += 1;
        }
    }
    println!(
        "serve check: {checked} users, {} score+append round-trips, {mismatches} mismatches",
        checked * 2
    );
    if mismatches != 0 || checked == 0 {
        return 1;
    }

    // --- optional ANN recall gate: served approximate top-k vs offline
    // exact top-k, as set overlap. Appends above already mutated server
    // state, so replay full histories through stateless score requests.
    if let Some(min_recall) = ann_recall_min {
        let mut hits = 0usize;
        let mut total = 0usize;
        let mut ann_users = 0usize;
        for (u, seq) in data.sequences.iter().enumerate() {
            if seq.len() < 2 {
                continue;
            }
            if ann_users >= users {
                break;
            }
            ann_users += 1;
            let prefix = &seq[..seq.len() - 1];
            let history_json: Vec<String> = prefix.iter().map(|i| i.to_string()).collect();
            let line = format!(
                "{{\"op\":\"score\",\"user\":{u},\"history\":[{}],\"k\":{k},\"topk\":\"ann\"}}",
                history_json.join(",")
            );
            let served = proto::parse_response(&send(&line)).expect("parse ann response");
            let (want_items, _) = top_k(&model.score_sequence(prefix), k);
            assert!(
                !served.items.contains(&0),
                "user {u}: ANN ranking contains padding id 0"
            );
            total += want_items.len();
            hits += want_items
                .iter()
                .filter(|i| served.items.contains(i))
                .count();
        }
        let recall = if total > 0 {
            hits as f64 / total as f64
        } else {
            0.0
        };
        println!(
            "serve check: ANN recall@{k} = {recall:.4} over {ann_users} users (gate {min_recall})"
        );
        if recall < min_recall {
            eprintln!("GATE FAILED: ANN recall@{k} {recall:.4} < {min_recall}");
            return 1;
        }
    }

    // --- optional admin snapshot: fetch, schema-validate, save for CI.
    if let Some(path) = args.get("admin-out") {
        let snap = send(r#"{"op":"admin","cmd":"snapshot"}"#);
        match telemetry::schema::validate_admin_snapshot(&snap) {
            Ok((n_metrics, n_slos)) => {
                println!("serve check: admin snapshot ok ({n_metrics} metrics, {n_slos} SLOs)");
            }
            Err(e) => {
                eprintln!("ADMIN SNAPSHOT INVALID: {e}\n  {snap}");
                return 1;
            }
        }
        let health = send(r#"{"op":"admin","cmd":"health"}"#);
        println!("serve check: {health}");
        std::fs::write(path, format!("{snap}\n")).expect("write --admin-out");
        if !health.contains("\"status\":\"pass\"") {
            eprintln!("GATE FAILED: server SLOs degraded: {health}");
            return 1;
        }
    }
    0
}

//! Optimizer integration tests: solve small problems end-to-end through
//! the autograd engine.

use autograd::{Graph, Parameter};
use optim::{clip_grad_norm, Adam, KlAnnealing, LrSchedule, Optimizer, Sgd};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::{init, ops, Tensor};

/// Least squares: find W minimizing ‖X·W − Y‖² for a known W*.
fn least_squares(opt_name: &str, mut step_fn: impl FnMut(&[autograd::ParamRef])) {
    let mut rng = StdRng::seed_from_u64(7);
    let x = init::randn(&mut rng, vec![32, 4], 0.0, 1.0);
    let w_true = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0, -1.0, 0.0, 2.0, 1.5], vec![4, 2]);
    let y = ops::matmul(&x, &w_true).unwrap_or_else(|e| panic!("fixture shapes: {e}"));
    let w = Parameter::shared("w", init::randn(&mut rng, vec![4, 2], 0.0, 0.1));

    for _ in 0..400 {
        let g = Graph::new();
        let pred = g.constant(x.clone()).matmul(&g.param(&w));
        let loss = pred.sub(&g.constant(y.clone())).square().mean_all();
        loss.backward();
        step_fn(std::slice::from_ref(&w));
    }
    let mut diff = w.borrow().value.clone();
    diff.axpy(-1.0, &w_true);
    assert!(
        diff.norm() < 0.05,
        "{opt_name} failed to recover W*: residual {}",
        diff.norm()
    );
}

#[test]
fn sgd_recovers_linear_map() {
    let w_holder: std::cell::RefCell<Option<Sgd>> = std::cell::RefCell::new(None);
    least_squares("sgd", |params| {
        let mut slot = w_holder.borrow_mut();
        let opt = slot.get_or_insert_with(|| Sgd::new(params.to_vec(), 0.05, 0.9));
        opt.step();
        opt.zero_grad();
    });
}

#[test]
fn adam_recovers_linear_map() {
    let holder: std::cell::RefCell<Option<Adam>> = std::cell::RefCell::new(None);
    least_squares("adam", |params| {
        let mut slot = holder.borrow_mut();
        let opt = slot.get_or_insert_with(|| Adam::new(params.to_vec(), 0.05));
        opt.step();
        opt.zero_grad();
    });
}

#[test]
fn gradient_clipping_stabilizes_explosive_start() {
    // With a huge learning-rate-like gradient scale, clipping keeps the
    // update bounded per step.
    let p = Parameter::shared("p", Tensor::from_vec(vec![0.0], vec![1]));
    p.borrow_mut().grad = Tensor::from_vec(vec![1e6], vec![1]);
    let before = clip_grad_norm(std::slice::from_ref(&p), 1.0);
    assert!(before > 1e5);
    let mut opt = Sgd::new(vec![p.clone()], 1.0, 0.0);
    opt.step();
    assert!(p.borrow().value.data()[0].abs() <= 1.0 + 1e-6);
}

#[test]
fn lr_schedule_drives_optimizer() {
    let p = Parameter::shared("p", Tensor::from_vec(vec![0.0], vec![1]));
    let mut opt = Sgd::new(vec![p.clone()], 0.0, 0.0);
    let sched = LrSchedule::LinearWarmup { lr: 1.0, warmup: 4 };
    let mut positions = Vec::new();
    for step in 0..6u64 {
        opt.set_lr(sched.at(step));
        p.borrow_mut().grad = Tensor::from_vec(vec![-1.0], vec![1]); // constant pull up
        opt.step();
        opt.zero_grad();
        positions.push(p.borrow().value.data()[0]);
    }
    // Increments grow during warmup then stay constant at lr=1.
    let inc: Vec<f32> = positions.windows(2).map(|w| w[1] - w[0]).collect();
    assert!(
        inc[0] < inc[1] && inc[1] < inc[2],
        "warmup increments must grow: {inc:?}"
    );
    assert!((inc[4] - 1.0).abs() < 1e-6);
}

#[test]
fn kl_annealing_composes_with_training_loop() {
    // β ramps over the first half of training and then holds.
    let anneal = KlAnnealing::new(0.2, 50);
    let betas: Vec<f32> = (0..100).map(|s| anneal.beta(s)).collect();
    assert!(betas[0] < betas[25]);
    assert!(betas[25] < betas[49]);
    assert_eq!(betas[50], 0.2);
    assert_eq!(betas[99], 0.2);
    // Monotone non-decreasing throughout.
    assert!(betas.windows(2).all(|w| w[0] <= w[1]));
}

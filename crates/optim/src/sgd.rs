//! SGD with momentum.

use autograd::ParamRef;
use tensor::Tensor;

use crate::Optimizer;

/// Stochastic gradient descent with classical momentum:
/// `v ← μ·v + g; θ ← θ − lr·v`.
pub struct Sgd {
    params: Vec<ParamRef>,
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer over `params`.
    pub fn new(params: Vec<ParamRef>, lr: f32, momentum: f32) -> Self {
        let velocity = params
            .iter()
            .map(|p| Tensor::zeros(p.borrow().value.dims().to_vec()))
            .collect();
        Sgd {
            params,
            lr,
            momentum,
            velocity,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        for (p, v) in self.params.iter().zip(self.velocity.iter_mut()) {
            let mut pb = p.borrow_mut();
            if self.momentum > 0.0 {
                v.scale_inplace(self.momentum);
                v.add_assign(&pb.grad);
                let update = v.clone();
                pb.value.axpy(-self.lr, &update);
            } else {
                let g = pb.grad.clone();
                pb.value.axpy(-self.lr, &g);
            }
        }
    }

    fn zero_grad(&mut self) {
        for p in &self.params {
            p.borrow_mut().zero_grad();
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::Parameter;

    #[test]
    fn vanilla_step() {
        let p = Parameter::shared("p", Tensor::from_vec(vec![1.0], vec![1]));
        p.borrow_mut().grad = Tensor::from_vec(vec![2.0], vec![1]);
        let mut opt = Sgd::new(vec![p.clone()], 0.1, 0.0);
        opt.step();
        assert!((p.borrow().value.data()[0] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn momentum_accumulates() {
        let p = Parameter::shared("p", Tensor::from_vec(vec![0.0], vec![1]));
        let mut opt = Sgd::new(vec![p.clone()], 1.0, 0.5);
        p.borrow_mut().grad = Tensor::from_vec(vec![1.0], vec![1]);
        opt.step(); // v=1, θ=-1
        assert!((p.borrow().value.data()[0] + 1.0).abs() < 1e-6);
        opt.step(); // v=0.5+1=1.5, θ=-2.5
        assert!((p.borrow().value.data()[0] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn zero_grad_clears() {
        let p = Parameter::shared("p", Tensor::from_vec(vec![0.0], vec![1]));
        p.borrow_mut().grad = Tensor::from_vec(vec![5.0], vec![1]);
        let mut opt = Sgd::new(vec![p.clone()], 1.0, 0.0);
        opt.zero_grad();
        assert_eq!(p.borrow().grad.data(), &[0.0]);
    }

    #[test]
    fn minimizes_quadratic() {
        // f(θ) = (θ−3)², gradient 2(θ−3); SGD should converge to 3.
        let p = Parameter::shared("p", Tensor::from_vec(vec![0.0], vec![1]));
        let mut opt = Sgd::new(vec![p.clone()], 0.1, 0.0);
        for _ in 0..100 {
            let theta = p.borrow().value.data()[0];
            p.borrow_mut().grad = Tensor::from_vec(vec![2.0 * (theta - 3.0)], vec![1]);
            opt.step();
            opt.zero_grad();
        }
        assert!((p.borrow().value.data()[0] - 3.0).abs() < 1e-3);
    }
}

//! Learning-rate schedules and the VAE KL-annealing schedule.

/// A learning-rate schedule mapping a step counter to a learning rate.
#[derive(Debug, Clone, Copy)]
pub enum LrSchedule {
    /// Fixed learning rate.
    Constant {
        /// The learning rate.
        lr: f32,
    },
    /// Linear ramp from 0 to `lr` over `warmup` steps, then constant.
    LinearWarmup {
        /// Peak learning rate after warm-up.
        lr: f32,
        /// Number of warm-up steps.
        warmup: u64,
    },
    /// Multiplies the rate by `gamma` every `every` steps.
    StepDecay {
        /// Initial learning rate.
        lr: f32,
        /// Decay interval in steps.
        every: u64,
        /// Multiplicative decay factor in `(0, 1]`.
        gamma: f32,
    },
}

impl LrSchedule {
    /// Learning rate at `step` (0-based).
    pub fn at(&self, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::LinearWarmup { lr, warmup } => {
                if warmup == 0 || step >= warmup {
                    lr
                } else {
                    lr * (step + 1) as f32 / warmup as f32
                }
            }
            LrSchedule::StepDecay { lr, every, gamma } => {
                lr * gamma.powi((step / every.max(1)) as i32)
            }
        }
    }
}

/// KL-annealing: the β weight on the KL term ramps linearly from 0 to
/// `beta_max` over `warmup_steps`, the standard fix for posterior collapse
/// the paper adopts ("we only need to multiply the KL term by a weight
/// coefficient, which is β in our work").
#[derive(Debug, Clone, Copy)]
pub struct KlAnnealing {
    beta_max: f32,
    warmup_steps: u64,
}

impl KlAnnealing {
    /// Creates a schedule ramping to `beta_max` over `warmup_steps`.
    pub fn new(beta_max: f32, warmup_steps: u64) -> Self {
        KlAnnealing {
            beta_max,
            warmup_steps,
        }
    }

    /// A constant β (annealing disabled).
    pub fn constant(beta: f32) -> Self {
        KlAnnealing {
            beta_max: beta,
            warmup_steps: 0,
        }
    }

    /// β at `step`.
    pub fn beta(&self, step: u64) -> f32 {
        if self.warmup_steps == 0 || step >= self.warmup_steps {
            self.beta_max
        } else {
            self.beta_max * step as f32 / self.warmup_steps as f32
        }
    }

    /// The asymptotic β.
    pub fn beta_max(&self) -> f32 {
        self.beta_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule() {
        let s = LrSchedule::Constant { lr: 0.5 };
        assert_eq!(s.at(0), 0.5);
        assert_eq!(s.at(1000), 0.5);
    }

    #[test]
    fn warmup_ramps_then_holds() {
        let s = LrSchedule::LinearWarmup {
            lr: 1.0,
            warmup: 10,
        };
        assert!((s.at(0) - 0.1).abs() < 1e-6);
        assert!((s.at(4) - 0.5).abs() < 1e-6);
        assert_eq!(s.at(10), 1.0);
        assert_eq!(s.at(100), 1.0);
    }

    #[test]
    fn step_decay_halves() {
        let s = LrSchedule::StepDecay {
            lr: 1.0,
            every: 10,
            gamma: 0.5,
        };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(9), 1.0);
        assert_eq!(s.at(10), 0.5);
        assert_eq!(s.at(25), 0.25);
    }

    #[test]
    fn kl_annealing_ramp() {
        let k = KlAnnealing::new(0.2, 100);
        assert_eq!(k.beta(0), 0.0);
        assert!((k.beta(50) - 0.1).abs() < 1e-6);
        assert_eq!(k.beta(100), 0.2);
        assert_eq!(k.beta(1_000), 0.2);
        assert_eq!(KlAnnealing::constant(0.3).beta(0), 0.3);
    }
}

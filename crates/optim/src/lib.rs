//! Optimizers and schedules for the Meta-SGCL reproduction.
//!
//! * [`Sgd`] — stochastic gradient descent with optional momentum.
//! * [`Adam`] — the paper's optimizer (Kingma & Ba), with optional decoupled
//!   weight decay (AdamW).
//! * [`clip_grad_norm`] — global-norm gradient clipping.
//! * [`LrSchedule`] — constant / linear-warmup / step-decay learning rates.
//! * [`KlAnnealing`] — the β warm-up heuristic the paper cites for training
//!   VAEs ("KL annealing", Section IV-E).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adam;
mod schedule;
mod sgd;

pub use adam::{Adam, AdamState};
pub use schedule::{KlAnnealing, LrSchedule};
pub use sgd::Sgd;

use std::sync::OnceLock;

use autograd::{GradientSet, ParamRef};

/// A first-order optimizer over a fixed parameter list.
pub trait Optimizer {
    /// Applies one update from the accumulated gradients, then leaves the
    /// gradients untouched (call [`Optimizer::zero_grad`] or the module's
    /// `zero_grad` before the next accumulation).
    fn step(&mut self);

    /// Zeroes the gradients of every managed parameter.
    fn zero_grad(&mut self);

    /// Sets the learning rate (for schedules).
    fn set_lr(&mut self, lr: f32);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Global L2 norm of the parameter delta applied by the most recent
    /// [`Optimizer::step`], if the implementation tracks it. The dead-σ'
    /// health detector keys off this: a meta stage whose update norm sits at
    /// ~0 means `Enc_σ'` has stopped adapting. Defaults to `None`.
    fn last_update_norm(&self) -> Option<f64> {
        None
    }
}

/// Diagnostics from one [`apply_step`] update.
#[derive(Debug, Clone, Copy)]
pub struct StepStats {
    /// Global L2 gradient norm before clipping. `None` when clipping is off
    /// and telemetry is disabled (the measurement pass is skipped entirely,
    /// keeping the disabled-telemetry hot path unchanged).
    pub grad_norm: Option<f32>,
    /// L2 norm of the applied parameter delta, when the optimizer tracks it
    /// (see [`Optimizer::last_update_norm`]).
    pub update_norm: Option<f64>,
}

/// Applies one optimizer update from a merged [`GradientSet`].
///
/// This is the single update path of the data-parallel executor: the caller
/// merges per-shard gradient sets (mean-reduced, weights summing to one, see
/// `GradientSet::merge_scaled`), and this function deposits them into the
/// shared parameter gradients, clips by global norm when `max_norm > 0`, and
/// steps. Because the merged set is a *mean* over the batch, the update is
/// agnostic to how many shards (or threads) produced it. Gradients are zeroed
/// before depositing and after stepping, so stale accumulation can't leak in.
///
/// Returns [`StepStats`] and mirrors them into the `optim.grad_norm` /
/// `optim.update_norm` telemetry gauges. Both are pure functions of the
/// merged gradient set, which the executor's fixed-order reduction makes
/// bitwise identical across thread counts, so the gauges are deterministic.
pub fn apply_step<O: Optimizer + ?Sized>(
    opt: &mut O,
    params: &[ParamRef],
    grads: &GradientSet,
    max_norm: f32,
) -> StepStats {
    opt.zero_grad();
    grads.apply();
    let grad_norm = if max_norm > 0.0 {
        Some(clip_grad_norm(params, max_norm))
    } else if telemetry::enabled() {
        // Clipping is off; measure the norm without rescaling.
        Some(clip_grad_norm(params, f32::INFINITY))
    } else {
        None
    };
    opt.step();
    opt.zero_grad();
    let update_norm = opt.last_update_norm();
    if telemetry::enabled() {
        static GRAD: OnceLock<&'static telemetry::Gauge> = OnceLock::new();
        static UPD: OnceLock<&'static telemetry::Gauge> = OnceLock::new();
        if let Some(n) = grad_norm {
            GRAD.get_or_init(|| telemetry::metrics::gauge("optim.grad_norm", true))
                .set(f64::from(n));
        }
        if let Some(n) = update_norm {
            UPD.get_or_init(|| telemetry::metrics::gauge("optim.update_norm", true))
                .set(n);
        }
    }
    StepStats {
        grad_norm,
        update_norm,
    }
}

/// Rescales gradients so their global L2 norm is at most `max_norm`.
/// Returns the norm before clipping.
pub fn clip_grad_norm(params: &[ParamRef], max_norm: f32) -> f32 {
    let mut total_sq = 0.0f32;
    for p in params {
        let g = &p.borrow().grad;
        total_sq += g.data().iter().map(|x| x * x).sum::<f32>();
    }
    let norm = total_sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            p.borrow_mut().grad.scale_inplace(scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::Parameter;
    use tensor::Tensor;

    #[test]
    fn clip_reduces_large_norm() {
        let p = Parameter::shared("p", Tensor::zeros(vec![2]));
        p.borrow_mut().grad = Tensor::from_vec(vec![3.0, 4.0], vec![2]);
        let before = clip_grad_norm(std::slice::from_ref(&p), 1.0);
        assert!((before - 5.0).abs() < 1e-6);
        assert!((p.borrow().grad.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_noop_when_small() {
        let p = Parameter::shared("p", Tensor::zeros(vec![2]));
        p.borrow_mut().grad = Tensor::from_vec(vec![0.3, 0.4], vec![2]);
        clip_grad_norm(std::slice::from_ref(&p), 1.0);
        assert_eq!(p.borrow().grad.data(), &[0.3, 0.4]);
    }
}

//! Adam / AdamW.

use autograd::ParamRef;
use tensor::Tensor;

use crate::Optimizer;

/// Adam (Kingma & Ba, 2015) with bias correction and optional decoupled
/// weight decay (AdamW when `weight_decay > 0`).
///
/// The paper trains with Adam at `lr = 0.001`, the defaults here.
pub struct Adam {
    params: Vec<ParamRef>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    last_update_norm: Option<f64>,
}

impl Adam {
    /// Adam with the paper's defaults: `lr=1e-3, β₁=0.9, β₂=0.999, ε=1e-8`.
    pub fn new(params: Vec<ParamRef>, lr: f32) -> Self {
        Self::with_config(params, lr, 0.9, 0.999, 1e-8, 0.0)
    }

    /// Fully-configured Adam/AdamW.
    pub fn with_config(
        params: Vec<ParamRef>,
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        weight_decay: f32,
    ) -> Self {
        let m = params
            .iter()
            .map(|p| Tensor::zeros(p.borrow().value.dims().to_vec()))
            .collect();
        let v = params
            .iter()
            .map(|p| Tensor::zeros(p.borrow().value.dims().to_vec()))
            .collect();
        Adam {
            params,
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            t: 0,
            m,
            v,
            last_update_norm: None,
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Snapshots the optimizer state (step counter + first/second moments,
    /// in parameter order) for checkpointing.
    pub fn export_state(&self) -> AdamState {
        AdamState {
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restores state captured by [`Adam::export_state`]. Fails (leaving the
    /// optimizer untouched) if the moment count or any moment shape does not
    /// match the managed parameters.
    pub fn import_state(&mut self, state: AdamState) -> Result<(), String> {
        if state.m.len() != self.params.len() || state.v.len() != self.params.len() {
            return Err(format!(
                "optimizer state has {} moment pairs, expected {}",
                state.m.len(),
                self.params.len()
            ));
        }
        for (i, p) in self.params.iter().enumerate() {
            let dims = p.borrow().value.dims().to_vec();
            if state.m[i].dims() != dims || state.v[i].dims() != dims {
                return Err(format!(
                    "optimizer moment shape mismatch for {}: file {:?}/{:?} vs model {:?}",
                    p.borrow().name,
                    state.m[i].dims(),
                    state.v[i].dims(),
                    dims
                ));
            }
        }
        self.t = state.t;
        self.m = state.m;
        self.v = state.v;
        Ok(())
    }

    /// Names of the managed parameters, in state order (for keying
    /// serialized moments).
    pub fn param_names(&self) -> Vec<String> {
        self.params
            .iter()
            .map(|p| p.borrow().name.clone())
            .collect()
    }
}

/// A snapshot of [`Adam`]'s mutable state: the step counter and the
/// first/second moment estimates, aligned with the optimizer's parameter
/// list.
#[derive(Debug, Clone)]
pub struct AdamState {
    /// Steps taken so far (drives bias correction).
    pub t: u64,
    /// First-moment estimates, one per parameter.
    pub m: Vec<Tensor>,
    /// Second-moment estimates, one per parameter.
    pub v: Vec<Tensor>,
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        // Applied-delta norm, accumulated in f64 in fixed parameter order so
        // the value is deterministic whenever the gradients are. Feeds the
        // dead-σ' health detector via `Optimizer::last_update_norm`.
        let mut delta_sq = 0.0f64;
        for ((p, m), v) in self
            .params
            .iter()
            .zip(self.m.iter_mut())
            .zip(self.v.iter_mut())
        {
            let mut pb = p.borrow_mut();
            let grad = pb.grad.clone();
            // m ← β₁·m + (1−β₁)·g ; v ← β₂·v + (1−β₂)·g²
            for ((mi, vi), gi) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(grad.data().iter())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let lr = self.lr;
            let (wd, eps) = (self.weight_decay, self.eps);
            for ((t, mi), vi) in pb
                .value
                .data_mut()
                .iter_mut()
                .zip(m.data().iter())
                .zip(v.data().iter())
            {
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                let mut update = mhat / (vhat.sqrt() + eps);
                if wd > 0.0 {
                    update += wd * *t; // decoupled weight decay (AdamW)
                }
                let delta = lr * update;
                delta_sq += f64::from(delta) * f64::from(delta);
                *t -= delta;
            }
        }
        self.last_update_norm = Some(delta_sq.sqrt());
    }

    fn zero_grad(&mut self) {
        for p in &self.params {
            p.borrow_mut().zero_grad();
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn last_update_norm(&self) -> Option<f64> {
        self.last_update_norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::Parameter;

    #[test]
    fn first_step_has_unit_scale() {
        // With bias correction, the very first Adam update ≈ lr·sign(g).
        let p = Parameter::shared("p", Tensor::from_vec(vec![0.0], vec![1]));
        p.borrow_mut().grad = Tensor::from_vec(vec![10.0], vec![1]);
        let mut opt = Adam::new(vec![p.clone()], 0.01);
        opt.step();
        assert!((p.borrow().value.data()[0] + 0.01).abs() < 1e-4);
    }

    #[test]
    fn minimizes_quadratic() {
        let p = Parameter::shared("p", Tensor::from_vec(vec![-4.0], vec![1]));
        let mut opt = Adam::new(vec![p.clone()], 0.1);
        for _ in 0..300 {
            let theta = p.borrow().value.data()[0];
            p.borrow_mut().grad = Tensor::from_vec(vec![2.0 * (theta - 3.0)], vec![1]);
            opt.step();
            opt.zero_grad();
        }
        assert!((p.borrow().value.data()[0] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        // Zero gradient + weight decay: parameter should decay toward 0.
        let p = Parameter::shared("p", Tensor::from_vec(vec![1.0], vec![1]));
        let mut opt = Adam::with_config(vec![p.clone()], 0.1, 0.9, 0.999, 1e-8, 0.1);
        for _ in 0..10 {
            opt.step();
            opt.zero_grad();
        }
        let v = p.borrow().value.data()[0];
        assert!(v < 1.0 && v > 0.0, "value {v}");
    }

    #[test]
    fn state_round_trip_resumes_identically() {
        // Two optimizers over identical params; after exporting/importing
        // mid-run, subsequent steps must match bitwise.
        let mk = || Parameter::shared("p", Tensor::from_vec(vec![-4.0, 2.0], vec![2]));
        let (pa, pb) = (mk(), mk());
        let mut a = Adam::new(vec![pa.clone()], 0.1);
        let mut b = Adam::new(vec![pb.clone()], 0.1);
        let grad_at = |p: &autograd::ParamRef, i: u64| {
            let theta = p.borrow().value.clone();
            p.borrow_mut().grad = Tensor::from_vec(
                theta.data().iter().map(|t| 2.0 * t + i as f32).collect(),
                vec![2],
            );
        };
        for i in 0..5 {
            grad_at(&pa, i);
            a.step();
            a.zero_grad();
        }
        // Transplant a's state into b (b's params must match a's values too).
        pb.borrow_mut().value = pa.borrow().value.clone();
        b.import_state(a.export_state()).unwrap();
        assert_eq!(b.steps(), 5);
        for i in 5..10 {
            grad_at(&pa, i);
            a.step();
            a.zero_grad();
            grad_at(&pb, i);
            b.step();
            b.zero_grad();
        }
        assert_eq!(pa.borrow().value.data(), pb.borrow().value.data());
    }

    #[test]
    fn import_rejects_mismatched_state() {
        let p = Parameter::shared("p", Tensor::zeros(vec![2]));
        let mut opt = Adam::new(vec![p], 0.1);
        let mut st = opt.export_state();
        st.m.push(Tensor::zeros(vec![2]));
        st.v.push(Tensor::zeros(vec![2]));
        assert!(opt.import_state(st).is_err());
        let mut st = opt.export_state();
        st.m[0] = Tensor::zeros(vec![3]);
        assert!(opt.import_state(st).is_err());
        assert_eq!(opt.steps(), 0);
    }

    #[test]
    fn update_norm_tracks_applied_delta() {
        let p = Parameter::shared("p", Tensor::from_vec(vec![0.0, 0.0], vec![2]));
        let mut opt = Adam::new(vec![p.clone()], 0.01);
        assert_eq!(opt.last_update_norm(), None, "no step taken yet");
        p.borrow_mut().grad = Tensor::from_vec(vec![10.0, -10.0], vec![2]);
        opt.step();
        // First bias-corrected step moves each coordinate by ≈ lr.
        let norm = opt.last_update_norm().expect("tracked after step");
        assert!((norm - 0.01 * 2f64.sqrt()).abs() < 1e-4, "norm {norm}");
        // A zero gradient with zero momentum history applies ~no update.
        let q = Parameter::shared("q", Tensor::from_vec(vec![1.0], vec![1]));
        let mut frozen = Adam::new(vec![q], 0.01);
        frozen.step();
        assert!(frozen.last_update_norm().unwrap() < 1e-9);
    }

    #[test]
    fn step_counter_advances() {
        let p = Parameter::shared("p", Tensor::from_vec(vec![0.0], vec![1]));
        let mut opt = Adam::new(vec![p], 0.1);
        assert_eq!(opt.steps(), 0);
        opt.step();
        opt.step();
        assert_eq!(opt.steps(), 2);
    }
}

//! Synthetic interaction generators standing in for the paper's datasets.
//!
//! See the crate docs for the rationale. The generative process plants
//! three separable signals, one per model family in Table II:
//!
//! 1. **Global popularity** (Zipf over the catalog) — the only signal `Pop`
//!    can use.
//! 2. **Static user–cluster affinity** — users draw from a few interest
//!    clusters; matrix-factorization models (BPR-MF) can learn this, but
//!    nothing sequential is needed.
//! 3. **Item-level successor chains** — every item has two fixed likely
//!    successors; the next item follows the chain with probability
//!    `markov_weight`. Only sequential models can exploit this, and it is
//!    the dominant signal in the dense `ml1m_like` preset, mirroring how
//!    strongly sequential MovieLens is compared to the Amazon datasets.
//!
//! The presets keep the paper's *relative* statistics (sparsity ordering,
//! average-length ordering) at a scale that trains on one CPU core.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Dataset, ItemId};

/// Configuration of the synthetic generator.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Dataset display name.
    pub name: String,
    /// Number of users to generate.
    pub num_users: usize,
    /// Number of items.
    pub num_items: usize,
    /// Number of item clusters (topics/genres) for user affinity.
    pub num_clusters: usize,
    /// Mean sequence length.
    pub mean_len: f64,
    /// Minimum sequence length (5-core ⇒ 5).
    pub min_len: usize,
    /// Maximum sequence length.
    pub max_len: usize,
    /// Probability the next item follows the current item's successor
    /// chain. Higher ⇒ more sequential structure.
    pub markov_weight: f64,
    /// Probability the next item is a pure global-popularity draw.
    pub pop_weight: f64,
    /// Zipf exponent for global item popularity (flatter ⇒ harder for Pop).
    pub zipf_exponent: f64,
    /// How many interest clusters each user has.
    pub user_interests: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SynthConfig {
    /// Scaled-down analogue of Amazon *Clothing Shoes and Jewelry*
    /// (paper: 39 387 users, 23 033 items, avg length 7.1, 99.97% sparse —
    /// the sparsest and least sequential of the three).
    pub fn clothing_like(seed: u64) -> Self {
        SynthConfig {
            name: "clothing-like".into(),
            num_users: 400,
            num_items: 360,
            num_clusters: 24,
            mean_len: 7.1,
            min_len: 5,
            max_len: 40,
            markov_weight: 0.30,
            pop_weight: 0.15,
            zipf_exponent: 0.6,
            user_interests: 3,
            seed,
        }
    }

    /// Scaled-down analogue of Amazon *Toys and Games*
    /// (paper: 19 412 users, 11 924 items, avg length 8.6, 99.93% sparse).
    pub fn toys_like(seed: u64) -> Self {
        SynthConfig {
            name: "toys-like".into(),
            num_users: 340,
            num_items: 280,
            num_clusters: 20,
            mean_len: 8.6,
            min_len: 5,
            max_len: 50,
            markov_weight: 0.42,
            pop_weight: 0.12,
            zipf_exponent: 0.55,
            user_interests: 3,
            seed,
        }
    }

    /// Scaled-down analogue of *MovieLens-1M*
    /// (paper: 6 040 users, 3 416 items, avg length 165.5, 95.16% sparse —
    /// dense and strongly sequential).
    pub fn ml1m_like(seed: u64) -> Self {
        SynthConfig {
            name: "ml1m-like".into(),
            num_users: 160,
            num_items: 200,
            num_clusters: 12,
            mean_len: 42.0,
            min_len: 16,
            max_len: 120,
            markov_weight: 0.55,
            pop_weight: 0.08,
            zipf_exponent: 0.5,
            user_interests: 4,
            seed,
        }
    }
}

/// The hidden structure planted in a generated dataset (exposed for tests
/// and analyses; real datasets obviously do not ship this).
#[derive(Debug, Clone)]
pub struct Planted {
    /// Two likely successors per item (index = item id, entry 0 unused).
    pub successors: Vec<[ItemId; 2]>,
    /// Cluster of each item (index = item id, entry 0 unused).
    pub cluster_of: Vec<usize>,
}

fn build_zipf_cdf(n: usize, exponent: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for rank in 0..n {
        acc += 1.0 / ((rank + 1) as f64).powf(exponent);
        cdf.push(acc);
    }
    for v in cdf.iter_mut() {
        *v /= acc;
    }
    cdf
}

fn sample_cdf(rng: &mut StdRng, cdf: &[f64]) -> usize {
    let u: f64 = rng.gen();
    cdf.partition_point(|&p| p < u).min(cdf.len() - 1)
}

/// Generates a dataset plus its planted structure. Deterministic per seed.
pub fn generate_with_plant(cfg: &SynthConfig) -> (Dataset, Planted) {
    assert!(
        cfg.markov_weight + cfg.pop_weight <= 1.0,
        "mixture weights exceed 1"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let c = cfg.num_clusters;
    let n = cfg.num_items;

    // Items round-robin over clusters; global Zipf popularity by item id.
    let cluster_of_item = |item: ItemId| (item - 1) % c;
    let mut cluster_items: Vec<Vec<ItemId>> = vec![Vec::new(); c];
    for item in 1..=n {
        cluster_items[cluster_of_item(item)].push(item);
    }
    let global_cdf = build_zipf_cdf(n, cfg.zipf_exponent);

    // Item-level successor chains: two fixed successors per item, biased
    // toward the "next" cluster so chains wander through topics.
    let mut successors = vec![[0usize; 2]; n + 1];
    for (item, succ) in successors.iter_mut().enumerate().skip(1) {
        let target_cluster = (cluster_of_item(item) + 1) % c;
        for s in succ.iter_mut() {
            *s = if rng.gen::<f64>() < 0.7 {
                let pool = &cluster_items[target_cluster];
                pool[rng.gen_range(0..pool.len())]
            } else {
                rng.gen_range(1..=n)
            };
        }
    }

    let mut cluster_of = vec![0usize; n + 1];
    for (item, c) in cluster_of.iter_mut().enumerate().skip(1) {
        *c = cluster_of_item(item);
    }

    let mut sequences = Vec::with_capacity(cfg.num_users);
    for _ in 0..cfg.num_users {
        // User affinity: a few interest clusters with geometric weights.
        let mut interests = Vec::with_capacity(cfg.user_interests.min(c));
        while interests.len() < cfg.user_interests.min(c) {
            let k = rng.gen_range(0..c);
            if !interests.contains(&k) {
                interests.push(k);
            }
        }
        let affinity_cdf: Vec<f64> = {
            let mut w: Vec<f64> = (0..interests.len())
                .map(|i| 0.5f64.powi(i as i32))
                .collect();
            let sum: f64 = w.iter().sum();
            let mut acc = 0.0;
            for v in w.iter_mut() {
                acc += *v / sum;
                *v = acc;
            }
            w
        };
        let affinity_draw = |rng: &mut StdRng| -> ItemId {
            let cl = interests[sample_cdf(rng, &affinity_cdf)];
            let pool = &cluster_items[cl];
            pool[rng.gen_range(0..pool.len())]
        };

        // Geometric-ish length with floor/ceiling.
        let mut len = cfg.min_len;
        let extra_mean = (cfg.mean_len - cfg.min_len as f64).max(0.5);
        let p_stop = 1.0 / (extra_mean + 1.0);
        while len < cfg.max_len && rng.gen::<f64>() > p_stop {
            len += 1;
        }

        // Per-user "style": which of an item's two successors this user
        // follows. Predicting it requires integrating the user's history —
        // a long-range signal that favours attention/RNN models over
        // fixed-window convolutions, as in the paper's Table II.
        let style = usize::from(rng.gen::<f64>() < 0.5);

        let mut seq: Vec<ItemId> = Vec::with_capacity(len);
        let mut current = affinity_draw(&mut rng);
        seq.push(current);
        for _ in 1..len {
            let r: f64 = rng.gen();
            current = if r < cfg.markov_weight {
                // Follow the user's styled successor (85 / 15 split).
                let pair = successors[current];
                if rng.gen::<f64>() < 0.85 {
                    pair[style]
                } else {
                    pair[1 - style]
                }
            } else if r < cfg.markov_weight + cfg.pop_weight {
                1 + sample_cdf(&mut rng, &global_cdf)
            } else {
                affinity_draw(&mut rng)
            };
            seq.push(current);
        }
        sequences.push(seq);
    }
    (
        Dataset {
            name: cfg.name.clone(),
            num_items: n,
            sequences,
        },
        Planted {
            successors,
            cluster_of,
        },
    )
}

/// Generates a dataset from a configuration. Deterministic per seed.
pub fn generate(cfg: &SynthConfig) -> Dataset {
    generate_with_plant(cfg).0
}

/// Convenience: generate all three presets with a shared seed.
pub fn paper_datasets(seed: u64) -> Vec<Dataset> {
    vec![
        generate(&SynthConfig::clothing_like(seed)),
        generate(&SynthConfig::toys_like(seed.wrapping_add(1))),
        generate(&SynthConfig::ml1m_like(seed.wrapping_add(2))),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = generate(&SynthConfig::toys_like(3));
        let b = generate(&SynthConfig::toys_like(3));
        assert_eq!(a.sequences, b.sequences);
        let c = generate(&SynthConfig::toys_like(4));
        assert_ne!(a.sequences, c.sequences);
    }

    #[test]
    fn all_sequences_meet_min_len_and_valid_ids() {
        for d in paper_datasets(7) {
            assert!(d.validate().is_ok());
            for s in &d.sequences {
                assert!(s.len() >= 5, "sequence shorter than 5-core floor");
            }
        }
    }

    #[test]
    fn presets_preserve_relative_statistics() {
        let ds = paper_datasets(11);
        let (clothing, toys, ml1m) = (&ds[0].stats(), &ds[1].stats(), &ds[2].stats());
        // Sparsity ordering from Table I: clothing > toys > ml1m.
        assert!(clothing.sparsity > toys.sparsity);
        assert!(toys.sparsity > ml1m.sparsity);
        // Average length ordering: clothing < toys < ml1m.
        assert!(clothing.avg_length < toys.avg_length);
        assert!(toys.avg_length < ml1m.avg_length);
        // Lengths in the right ballpark.
        assert!((clothing.avg_length - 7.1).abs() < 2.5);
        assert!((toys.avg_length - 8.6).abs() < 3.0);
        assert!(ml1m.avg_length > 30.0);
    }

    #[test]
    fn popularity_is_skewed_but_not_degenerate() {
        let d = generate(&SynthConfig::clothing_like(5));
        let mut counts = d.item_counts();
        counts.remove(0);
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = counts.iter().sum();
        let top5: usize = counts.iter().take(5).sum();
        let share = top5 as f64 / total as f64;
        // The top-5 items must not dominate (Pop should stay weak) but the
        // distribution must still be skewed (it is a popularity signal).
        assert!(share < 0.15, "top-5 share too high: {share:.3}");
        assert!(
            share > 2.0 * 5.0 / counts.len() as f64,
            "no skew at all: {share:.3}"
        );
    }

    #[test]
    fn successor_chains_are_followed_at_configured_rate() {
        let cfg = SynthConfig::ml1m_like(9);
        let (d, plant) = generate_with_plant(&cfg);
        let mut hits = 0usize;
        let mut total = 0usize;
        for s in &d.sequences {
            for w in s.windows(2) {
                if plant.successors[w[0]].contains(&w[1]) {
                    hits += 1;
                }
                total += 1;
            }
        }
        let rate = hits as f64 / total as f64;
        // Chains fire with probability markov_weight (plus rare accidental
        // matches), so the observed rate should be close to it.
        assert!(
            (rate - cfg.markov_weight).abs() < 0.08,
            "successor rate {rate:.3} vs configured {}",
            cfg.markov_weight
        );
    }

    #[test]
    fn sequential_signal_orders_presets() {
        // ML-1M-like must be the most sequential, clothing-like the least —
        // the property that makes the Table II gaps dataset-dependent.
        let measure = |cfg: &SynthConfig| {
            let (d, plant) = generate_with_plant(cfg);
            let mut hits = 0usize;
            let mut total = 0usize;
            for s in &d.sequences {
                for w in s.windows(2) {
                    if plant.successors[w[0]].contains(&w[1]) {
                        hits += 1;
                    }
                    total += 1;
                }
            }
            hits as f64 / total as f64
        };
        let clothing = measure(&SynthConfig::clothing_like(13));
        let toys = measure(&SynthConfig::toys_like(13));
        let ml1m = measure(&SynthConfig::ml1m_like(13));
        assert!(
            clothing < toys && toys < ml1m,
            "{clothing:.3} {toys:.3} {ml1m:.3}"
        );
    }

    #[test]
    fn planted_clusters_match_item_layout() {
        let cfg = SynthConfig::toys_like(1);
        let (_, plant) = generate_with_plant(&cfg);
        for item in 1..=cfg.num_items {
            assert_eq!(plant.cluster_of[item], (item - 1) % cfg.num_clusters);
        }
    }
}

//! Leave-one-out evaluation split.
//!
//! "For each user, we use the last clicked item for testing, the
//! penultimate one for validation, and the remaining clicked items for
//! training."

use crate::{Dataset, ItemId};

/// One user's split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserSplit {
    /// Training prefix (everything except the last two items).
    pub train: Vec<ItemId>,
    /// Validation target (penultimate item); input is `train`.
    pub valid_target: ItemId,
    /// Test target (last item); input is `train ++ [valid_target]`.
    pub test_target: ItemId,
}

impl UserSplit {
    /// Input sequence for scoring the test target.
    pub fn test_input(&self) -> Vec<ItemId> {
        let mut v = self.train.clone();
        v.push(self.valid_target);
        v
    }
}

/// Leave-one-out split over a whole dataset. Users with fewer than 3
/// interactions are dropped (they cannot supply train + valid + test).
#[derive(Debug, Clone)]
pub struct LeaveOneOut {
    /// Per-user splits.
    pub users: Vec<UserSplit>,
    /// Number of items in the underlying dataset.
    pub num_items: usize,
}

impl LeaveOneOut {
    /// Splits a dataset.
    pub fn split(data: &Dataset) -> LeaveOneOut {
        let users = data
            .sequences
            .iter()
            .filter(|s| s.len() >= 3)
            .map(|s| {
                let n = s.len();
                UserSplit {
                    train: s[..n - 2].to_vec(),
                    valid_target: s[n - 2],
                    test_target: s[n - 1],
                }
            })
            .collect();
        LeaveOneOut {
            users,
            num_items: data.num_items,
        }
    }

    /// Number of evaluable users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// The training sequences (one per user, without valid/test items).
    pub fn train_sequences(&self) -> Vec<Vec<ItemId>> {
        self.users.iter().map(|u| u.train.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_assigns_last_two_items() {
        let d = Dataset {
            name: "t".into(),
            num_items: 9,
            sequences: vec![vec![1, 2, 3, 4, 5], vec![7, 8]],
        };
        let s = LeaveOneOut::split(&d);
        assert_eq!(s.num_users(), 1, "short user dropped");
        let u = &s.users[0];
        assert_eq!(u.train, vec![1, 2, 3]);
        assert_eq!(u.valid_target, 4);
        assert_eq!(u.test_target, 5);
        assert_eq!(u.test_input(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn no_leakage_into_training() {
        let d = Dataset {
            name: "t".into(),
            num_items: 9,
            sequences: vec![vec![1, 2, 3, 4, 5]],
        };
        let s = LeaveOneOut::split(&d);
        let train = s.train_sequences();
        assert!(!train[0].contains(&4));
        assert!(!train[0].contains(&5));
    }
}

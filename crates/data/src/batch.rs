//! Left-padded fixed-length batching for sequence models.
//!
//! Following the paper's embedding layer (Section IV-B): "for sequences
//! larger than [T] we only keep items of the length of the most recent
//! interaction; for sequences smaller than this length, we first pad with
//! zeros". Padding is on the *left* so the most recent item always sits at
//! the last position, which is where next-item scoring reads the hidden
//! state.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use tensor::bug::OrBug;

use crate::{ItemId, PAD_ITEM};

/// One training batch of fixed-length sequences.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Left-padded input sequences `[batch][max_len]`.
    pub inputs: Vec<Vec<ItemId>>,
    /// Per-position next-item targets `[batch][max_len]`;
    /// `usize::MAX` (autograd's `IGNORE_INDEX`) marks padding positions.
    pub targets: Vec<Vec<usize>>,
    /// The final next-item target per sequence (last real position's target).
    pub last_target: Vec<usize>,
    /// Padding flags `[batch][max_len]` (true = padding).
    pub pad: Vec<Vec<bool>>,
}

impl Batch {
    /// Batch size.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Sequence length (identical across the batch).
    pub fn seq_len(&self) -> usize {
        self.inputs.first().map_or(0, Vec::len)
    }

    /// Splits the batch into contiguous shards of at most `shard_size` rows,
    /// preserving row order.
    ///
    /// The partition is a pure function of the batch length and `shard_size`
    /// — deliberately independent of how many worker threads will process
    /// the shards, so data-parallel training produces identical results for
    /// any thread count (see the training executor in the core crate).
    pub fn shard(&self, shard_size: usize) -> Vec<Batch> {
        assert!(shard_size >= 1, "shard_size must be at least 1");
        if self.len() <= shard_size {
            return vec![self.clone()];
        }
        (0..self.len())
            .step_by(shard_size)
            .map(|start| {
                let end = (start + shard_size).min(self.len());
                Batch {
                    inputs: self.inputs[start..end].to_vec(),
                    targets: self.targets[start..end].to_vec(),
                    last_target: self.last_target[start..end].to_vec(),
                    pad: self.pad[start..end].to_vec(),
                }
            })
            .collect()
    }
}

/// Converts one raw sequence into `(input, per-position targets, pad)` for
/// autoregressive training: input is `s[..n-1]` and target at position `t`
/// is `s[t+1]`, both left-padded/truncated to `max_len`.
pub fn encode_sequence(seq: &[ItemId], max_len: usize) -> (Vec<ItemId>, Vec<usize>, Vec<bool>) {
    // Keep the most recent max_len+1 items; inputs are all but the last,
    // targets are all but the first.
    let keep = if seq.len() > max_len + 1 {
        &seq[seq.len() - (max_len + 1)..]
    } else {
        seq
    };
    let inputs_raw = &keep[..keep.len().saturating_sub(1)];
    let targets_raw = &keep[1.min(keep.len())..];
    let n = inputs_raw.len();
    let pad_n = max_len - n;
    let mut input = vec![PAD_ITEM; pad_n];
    input.extend_from_slice(inputs_raw);
    let mut targets = vec![usize::MAX; pad_n];
    targets.extend_from_slice(targets_raw);
    let mut pad = vec![true; pad_n];
    pad.extend(std::iter::repeat_n(false, n));
    (input, targets, pad)
}

/// Encodes a sequence purely as input (for inference): the *whole* sequence
/// left-padded/truncated to `max_len`, no targets.
pub fn encode_input_only(seq: &[ItemId], max_len: usize) -> (Vec<ItemId>, Vec<bool>) {
    let keep = if seq.len() > max_len {
        &seq[seq.len() - max_len..]
    } else {
        seq
    };
    let n = keep.len();
    let pad_n = max_len - n;
    let mut input = vec![PAD_ITEM; pad_n];
    input.extend_from_slice(keep);
    let mut pad = vec![true; pad_n];
    pad.extend(std::iter::repeat_n(false, n));
    (input, pad)
}

/// Shuffling mini-batcher over training sequences.
pub struct Batcher {
    sequences: Vec<Vec<ItemId>>,
    max_len: usize,
    batch_size: usize,
}

impl Batcher {
    /// Creates a batcher. Sequences shorter than 2 items are dropped (no
    /// next-item target exists).
    pub fn new(sequences: Vec<Vec<ItemId>>, max_len: usize, batch_size: usize) -> Self {
        assert!(max_len >= 1 && batch_size >= 1);
        let sequences: Vec<_> = sequences.into_iter().filter(|s| s.len() >= 2).collect();
        Batcher {
            sequences,
            max_len,
            batch_size,
        }
    }

    /// Number of usable sequences.
    pub fn num_sequences(&self) -> usize {
        self.sequences.len()
    }

    /// Produces the epoch's batches in a seeded shuffled order.
    pub fn epoch(&self, rng: &mut StdRng) -> Vec<Batch> {
        let mut order: Vec<usize> = (0..self.sequences.len()).collect();
        order.shuffle(rng);
        order
            .chunks(self.batch_size)
            .map(|chunk| {
                let mut inputs = Vec::with_capacity(chunk.len());
                let mut targets = Vec::with_capacity(chunk.len());
                let mut last_target = Vec::with_capacity(chunk.len());
                let mut pad = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    let (inp, tgt, pd) = encode_sequence(&self.sequences[i], self.max_len);
                    last_target.push(*self.sequences[i].last().or_bug("len >= 2"));
                    inputs.push(inp);
                    targets.push(tgt);
                    pad.push(pd);
                }
                Batch {
                    inputs,
                    targets,
                    last_target,
                    pad,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn encode_pads_left() {
        let (inp, tgt, pad) = encode_sequence(&[3, 7, 9], 5);
        assert_eq!(inp, vec![0, 0, 0, 3, 7]);
        assert_eq!(tgt, vec![usize::MAX, usize::MAX, usize::MAX, 7, 9]);
        assert_eq!(pad, vec![true, true, true, false, false]);
    }

    #[test]
    fn encode_truncates_to_recent() {
        let (inp, tgt, _) = encode_sequence(&[1, 2, 3, 4, 5, 6], 3);
        // keep last 4 = [3,4,5,6]; inputs [3,4,5], targets [4,5,6]
        assert_eq!(inp, vec![3, 4, 5]);
        assert_eq!(tgt, vec![4, 5, 6]);
    }

    #[test]
    fn encode_input_only_keeps_whole_tail() {
        let (inp, pad) = encode_input_only(&[1, 2, 3], 5);
        assert_eq!(inp, vec![0, 0, 1, 2, 3]);
        assert_eq!(pad, vec![true, true, false, false, false]);
        let (inp, _) = encode_input_only(&[1, 2, 3, 4, 5, 6], 4);
        assert_eq!(inp, vec![3, 4, 5, 6]);
    }

    #[test]
    fn batcher_covers_all_sequences_once() {
        let seqs = vec![vec![1, 2, 3], vec![4, 5], vec![6, 7, 8, 9], vec![1]];
        let b = Batcher::new(seqs, 4, 2);
        assert_eq!(b.num_sequences(), 3, "singleton dropped");
        let mut rng = StdRng::seed_from_u64(0);
        let batches = b.epoch(&mut rng);
        let total: usize = batches.iter().map(Batch::len).sum();
        assert_eq!(total, 3);
        for batch in &batches {
            assert_eq!(batch.seq_len(), 4);
            assert_eq!(batch.targets.len(), batch.len());
            assert_eq!(batch.last_target.len(), batch.len());
        }
    }

    #[test]
    fn epoch_order_is_seeded() {
        let seqs: Vec<Vec<usize>> = (0..20).map(|i| vec![i + 1, i + 2, i + 3]).collect();
        let b = Batcher::new(seqs, 3, 4);
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let e1 = b.epoch(&mut r1);
        let e2 = b.epoch(&mut r2);
        assert_eq!(e1[0].inputs, e2[0].inputs);
        let mut r3 = StdRng::seed_from_u64(6);
        let e3 = b.epoch(&mut r3);
        assert_ne!(e1[0].inputs, e3[0].inputs);
    }

    #[test]
    fn last_target_is_final_item() {
        let b = Batcher::new(vec![vec![5, 6, 7]], 8, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let batches = b.epoch(&mut rng);
        assert_eq!(batches[0].last_target, vec![7]);
    }
}

//! Sequence-level augmentation operators.
//!
//! These are the *hand-crafted* augmentations of CL4SRec (item crop, item
//! mask, item reorder) that the paper's Figure 1 argues can destroy
//! sequential semantics — we implement them because the baselines
//! (CL4SRec-style view generation inside DuoRec/ContrastVAE variants) need
//! them, and because the comparison against generative augmentation *is*
//! the paper's point. [`inject_noise`] implements the RQ5 robustness
//! protocol (random negative items inserted into training sequences).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::ItemId;

/// Mask-token convention: item id `num_items + MASK_TOKEN_OFFSET` is the
/// `[mask]` token (callers must size their embedding tables accordingly).
pub const MASK_TOKEN_OFFSET: usize = 1;

/// Item crop (CL4SRec): keeps a random contiguous sub-sequence of ratio
/// `eta` (at least one item).
pub fn item_crop(seq: &[ItemId], eta: f64, rng: &mut StdRng) -> Vec<ItemId> {
    if seq.is_empty() {
        return Vec::new();
    }
    let keep = ((seq.len() as f64 * eta).round() as usize).clamp(1, seq.len());
    let start = rng.gen_range(0..=seq.len() - keep);
    seq[start..start + keep].to_vec()
}

/// Item mask (CL4SRec): replaces a `gamma` fraction of items with the
/// `[mask]` token `num_items + 1`.
pub fn item_mask(seq: &[ItemId], gamma: f64, num_items: usize, rng: &mut StdRng) -> Vec<ItemId> {
    let mask_token = num_items + MASK_TOKEN_OFFSET;
    let mut out = seq.to_vec();
    let k = ((seq.len() as f64 * gamma).round() as usize).min(seq.len());
    let mut idx: Vec<usize> = (0..seq.len()).collect();
    idx.shuffle(rng);
    for &i in idx.iter().take(k) {
        out[i] = mask_token;
    }
    out
}

/// Item reorder (CL4SRec): shuffles a random contiguous window of ratio
/// `beta`.
pub fn item_reorder(seq: &[ItemId], beta: f64, rng: &mut StdRng) -> Vec<ItemId> {
    let mut out = seq.to_vec();
    if seq.len() < 2 {
        return out;
    }
    let w = ((seq.len() as f64 * beta).round() as usize).clamp(2, seq.len());
    let start = rng.gen_range(0..=seq.len() - w);
    out[start..start + w].shuffle(rng);
    out
}

/// Item-correlation model for CoSeRec-style *informative* augmentation:
/// substitution and insertion draw from items that co-occur with the
/// anchor item in training sequences rather than uniformly at random.
#[derive(Debug, Clone)]
pub struct ItemCorrelations {
    /// Most-co-occurring items per item (index = item id).
    similar: Vec<Vec<ItemId>>,
}

impl ItemCorrelations {
    /// Builds windowed co-occurrence counts (window ±2) from training
    /// sequences and keeps the `top_k` most correlated items per item.
    pub fn build(sequences: &[Vec<ItemId>], num_items: usize, top_k: usize) -> Self {
        let mut counts: Vec<HashMap<ItemId, u32>> = vec![HashMap::new(); num_items + 1];
        for seq in sequences {
            for (i, &a) in seq.iter().enumerate() {
                let lo = i.saturating_sub(2);
                let hi = (i + 3).min(seq.len());
                for &b in &seq[lo..hi] {
                    if a != b {
                        *counts[a].entry(b).or_insert(0) += 1;
                    }
                }
            }
        }
        let similar = counts
            .into_iter()
            .map(|m| {
                let mut v: Vec<(ItemId, u32)> = m.into_iter().collect();
                v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                v.into_iter().take(top_k).map(|(it, _)| it).collect()
            })
            .collect();
        ItemCorrelations { similar }
    }

    /// Items most correlated with `item` (possibly empty).
    pub fn similar_to(&self, item: ItemId) -> &[ItemId] {
        &self.similar[item]
    }

    /// CoSeRec *informative substitute*: replaces a `gamma` fraction of
    /// items with one of their correlated items (no-op for items without
    /// correlations).
    pub fn substitute(&self, seq: &[ItemId], gamma: f64, rng: &mut StdRng) -> Vec<ItemId> {
        let mut out = seq.to_vec();
        let k = ((seq.len() as f64 * gamma).round() as usize).min(seq.len());
        let mut idx: Vec<usize> = (0..seq.len()).collect();
        idx.shuffle(rng);
        for &i in idx.iter().take(k) {
            let sims = self.similar_to(out[i]);
            if !sims.is_empty() {
                out[i] = sims[rng.gen_range(0..sims.len())];
            }
        }
        out
    }

    /// CoSeRec *informative insert*: inserts correlated items after a
    /// `gamma` fraction of positions.
    pub fn insert(&self, seq: &[ItemId], gamma: f64, rng: &mut StdRng) -> Vec<ItemId> {
        let k = ((seq.len() as f64 * gamma).round() as usize).min(seq.len());
        let mut positions: Vec<usize> = (0..seq.len()).collect();
        positions.shuffle(rng);
        let mut insert_at: Vec<(usize, ItemId)> = Vec::new();
        for &i in positions.iter().take(k) {
            let sims = self.similar_to(seq[i]);
            if !sims.is_empty() {
                insert_at.push((i + 1, sims[rng.gen_range(0..sims.len())]));
            }
        }
        // Insert from the back so earlier indices stay valid.
        insert_at.sort_by_key(|&(pos, _)| std::cmp::Reverse(pos));
        let mut out = seq.to_vec();
        for (pos, item) in insert_at {
            out.insert(pos, item);
        }
        out
    }
}

/// RQ5 noise injection: inserts `ratio · len` uniformly random items at
/// random positions of each training sequence ("we randomly add a certain
/// proportion of negative items into the input sequences during training").
pub fn inject_noise(
    sequences: &[Vec<ItemId>],
    ratio: f64,
    num_items: usize,
    rng: &mut StdRng,
) -> Vec<Vec<ItemId>> {
    sequences
        .iter()
        .map(|s| {
            let k = (s.len() as f64 * ratio).round() as usize;
            let mut out = s.clone();
            for _ in 0..k {
                let pos = rng.gen_range(0..=out.len());
                let item = rng.gen_range(1..=num_items);
                out.insert(pos, item);
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn crop_keeps_contiguous_subsequence() {
        let seq = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let mut r = rng();
        for _ in 0..50 {
            let c = item_crop(&seq, 0.5, &mut r);
            assert_eq!(c.len(), 4);
            // Contiguity: c must appear as a window of seq.
            assert!(seq.windows(4).any(|w| w == c.as_slice()));
        }
    }

    #[test]
    fn crop_never_empty() {
        let mut r = rng();
        assert_eq!(item_crop(&[9], 0.01, &mut r), vec![9]);
        assert!(item_crop(&[], 0.5, &mut r).is_empty());
    }

    #[test]
    fn mask_replaces_expected_fraction() {
        let seq: Vec<usize> = (1..=10).collect();
        let mut r = rng();
        let m = item_mask(&seq, 0.3, 100, &mut r);
        assert_eq!(m.len(), 10);
        let masked = m.iter().filter(|&&x| x == 101).count();
        assert_eq!(masked, 3);
        // Unmasked items keep their positions.
        for (orig, new) in seq.iter().zip(m.iter()) {
            assert!(*new == 101 || new == orig);
        }
    }

    #[test]
    fn reorder_is_permutation_within_window() {
        let seq: Vec<usize> = (1..=10).collect();
        let mut r = rng();
        let m = item_reorder(&seq, 0.5, &mut r);
        assert_eq!(m.len(), 10);
        let mut a = seq.clone();
        let mut b = m.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "reorder must be a permutation");
    }

    #[test]
    fn noise_grows_sequences_by_ratio() {
        let seqs = vec![vec![1usize; 10], vec![2usize; 20]];
        let mut r = rng();
        let noisy = inject_noise(&seqs, 0.2, 50, &mut r);
        assert_eq!(noisy[0].len(), 12);
        assert_eq!(noisy[1].len(), 24);
        // Zero ratio is identity.
        let clean = inject_noise(&seqs, 0.0, 50, &mut r);
        assert_eq!(clean, seqs);
    }

    #[test]
    fn correlations_capture_co_occurrence() {
        // Items 1 and 2 always adjacent; 3 isolated with 4.
        let seqs = vec![vec![1, 2, 1, 2, 1, 2], vec![3, 4, 3, 4]];
        let corr = ItemCorrelations::build(&seqs, 4, 3);
        assert_eq!(corr.similar_to(1).first(), Some(&2));
        assert_eq!(corr.similar_to(2).first(), Some(&1));
        assert_eq!(corr.similar_to(3).first(), Some(&4));
        assert!(corr.similar_to(1).iter().all(|&x| x != 3 && x != 4));
    }

    #[test]
    fn substitute_uses_correlated_items_only() {
        let seqs = vec![vec![1, 2, 1, 2, 1, 2]];
        let corr = ItemCorrelations::build(&seqs, 2, 2);
        let mut r = rng();
        let out = corr.substitute(&[1, 1, 1, 1], 1.0, &mut r);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|&x| x == 1 || x == 2));
        assert!(out.contains(&2), "some substitution should occur");
    }

    #[test]
    fn insert_grows_sequence_with_correlated_items() {
        let seqs = vec![vec![1, 2, 1, 2, 1, 2]];
        let corr = ItemCorrelations::build(&seqs, 2, 2);
        let mut r = rng();
        let out = corr.insert(&[1, 2, 1], 1.0, &mut r);
        assert!(out.len() > 3);
        // Original order preserved as a subsequence.
        let mut iter = out.iter();
        for want in [1usize, 2, 1] {
            assert!(iter.any(|&x| x == want), "subsequence broken: {out:?}");
        }
    }

    #[test]
    fn substitute_noop_without_correlations() {
        let corr = ItemCorrelations::build(&[], 5, 2);
        let mut r = rng();
        assert_eq!(corr.substitute(&[1, 2, 3], 1.0, &mut r), vec![1, 2, 3]);
    }

    #[test]
    fn noise_items_in_valid_range() {
        let seqs = vec![vec![1usize; 100]];
        let mut r = rng();
        let noisy = inject_noise(&seqs, 0.5, 7, &mut r);
        for &it in &noisy[0] {
            assert!((1..=7).contains(&it));
        }
    }
}

//! Core dataset types and statistics (Table I).

/// Item identifier. `0` is reserved for padding; real items are `1..=n`.
pub type ItemId = usize;

/// The reserved padding item id.
pub const PAD_ITEM: ItemId = 0;

/// A sequential-recommendation dataset: one chronological item sequence per
/// user.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Display name (e.g. `"clothing-like"`).
    pub name: String,
    /// Number of real items; valid ids are `1..=num_items`.
    pub num_items: usize,
    /// Per-user chronological interaction sequences (no padding).
    pub sequences: Vec<Vec<ItemId>>,
}

/// Summary statistics in the shape of the paper's Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of users.
    pub users: usize,
    /// Number of items.
    pub items: usize,
    /// Total interactions.
    pub interactions: usize,
    /// Mean sequence length.
    pub avg_length: f64,
    /// `1 − interactions / (users · items)`.
    pub sparsity: f64,
}

impl Dataset {
    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.sequences.len()
    }

    /// Total number of interactions.
    pub fn num_interactions(&self) -> usize {
        self.sequences.iter().map(Vec::len).sum()
    }

    /// Computes Table-I-style statistics.
    pub fn stats(&self) -> DatasetStats {
        let users = self.num_users();
        let interactions = self.num_interactions();
        let avg_length = if users == 0 {
            0.0
        } else {
            interactions as f64 / users as f64
        };
        let cells = (users * self.num_items) as f64;
        let sparsity = if cells == 0.0 {
            1.0
        } else {
            1.0 - interactions as f64 / cells
        };
        DatasetStats {
            users,
            items: self.num_items,
            interactions,
            avg_length,
            sparsity,
        }
    }

    /// Applies k-core filtering on users: repeatedly drops users with fewer
    /// than `k` interactions and items seen fewer than `k` times, then
    /// compacts item ids. The paper uses the 5-core versions of the Amazon
    /// datasets.
    pub fn k_core(&self, k: usize) -> Dataset {
        let mut sequences = self.sequences.clone();
        loop {
            // Count item occurrences over surviving users.
            let mut item_count = vec![0usize; self.num_items + 1];
            for s in &sequences {
                for &it in s {
                    item_count[it] += 1;
                }
            }
            let mut changed = false;
            for s in &mut sequences {
                let before = s.len();
                s.retain(|&it| item_count[it] >= k);
                if s.len() != before {
                    changed = true;
                }
            }
            let before_users = sequences.len();
            sequences.retain(|s| s.len() >= k);
            if sequences.len() != before_users {
                changed = true;
            }
            if !changed {
                break;
            }
        }
        // Compact item ids to 1..=m.
        let mut remap = vec![0usize; self.num_items + 1];
        let mut next = 0usize;
        for s in &mut sequences {
            for it in s.iter_mut() {
                if remap[*it] == 0 {
                    next += 1;
                    remap[*it] = next;
                }
                *it = remap[*it];
            }
        }
        Dataset {
            name: format!("{}-{k}core", self.name),
            num_items: next,
            sequences,
        }
    }

    /// Per-item interaction counts, indexed by item id (`counts[0]` unused).
    pub fn item_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_items + 1];
        for s in &self.sequences {
            for &it in s {
                counts[it] += 1;
            }
        }
        counts
    }

    /// Validates internal invariants (item ids in range, no padding id in
    /// raw data). Returns an error message on the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (u, s) in self.sequences.iter().enumerate() {
            for &it in s {
                if it == PAD_ITEM {
                    return Err(format!("user {u} contains the padding item 0"));
                }
                if it > self.num_items {
                    return Err(format!(
                        "user {u} references item {it} > num_items {}",
                        self.num_items
                    ));
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "users={} items={} interactions={} avg.length={:.1} sparsity={:.2}%",
            self.users,
            self.items,
            self.interactions,
            self.avg_length,
            self.sparsity * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset {
            name: "toy".into(),
            num_items: 4,
            sequences: vec![vec![1, 2, 3], vec![2, 3], vec![4]],
        }
    }

    #[test]
    fn stats_match_hand_computation() {
        let s = toy().stats();
        assert_eq!(s.users, 3);
        assert_eq!(s.items, 4);
        assert_eq!(s.interactions, 6);
        assert!((s.avg_length - 2.0).abs() < 1e-9);
        assert!((s.sparsity - (1.0 - 6.0 / 12.0)).abs() < 1e-9);
    }

    #[test]
    fn validate_catches_bad_ids() {
        let mut d = toy();
        assert!(d.validate().is_ok());
        d.sequences[0][0] = 0;
        assert!(d.validate().is_err());
        d.sequences[0][0] = 99;
        assert!(d.validate().is_err());
    }

    #[test]
    fn k_core_drops_rare_users_and_items() {
        let d = Dataset {
            name: "t".into(),
            num_items: 5,
            // item 5 appears once; user 2 has 1 interaction.
            sequences: vec![vec![1, 2, 1, 2], vec![1, 2, 2, 1], vec![5]],
        };
        let c = d.k_core(2);
        assert_eq!(c.num_users(), 2);
        assert_eq!(c.num_items, 2); // items 1,2 compacted
        for s in &c.sequences {
            assert!(s.len() >= 2);
            for &it in s {
                assert!((1..=2).contains(&it));
            }
        }
        assert!(c.validate().is_ok());
    }

    #[test]
    fn k_core_cascades() {
        // Removing a user can push an item below threshold, which must
        // cascade to other users.
        let d = Dataset {
            name: "t".into(),
            num_items: 3,
            sequences: vec![vec![1, 1], vec![1, 2], vec![2, 3]],
        };
        // 2-core: item 3 appears once → drop → user 2 has 1 → drop → item 2
        // appears once → drop from user 1 → user 1 has 1 → drop.
        let c = d.k_core(2);
        assert_eq!(c.num_users(), 1);
        assert_eq!(c.sequences[0], vec![1, 1]);
    }

    #[test]
    fn item_counts_correct() {
        let counts = toy().item_counts();
        assert_eq!(counts[1], 1);
        assert_eq!(counts[2], 2);
        assert_eq!(counts[3], 2);
        assert_eq!(counts[4], 1);
    }
}

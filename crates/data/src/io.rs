//! Loading real interaction logs.
//!
//! The paper evaluates on Amazon review datasets and MovieLens-1M. Those
//! files cannot ship with this repository, but users who download them can
//! load them here: [`load_interactions_csv`] accepts the common
//! `user,item,rating,timestamp`-style layouts, applies the paper's
//! preprocessing (binarize ratings ≥ threshold, sort chronologically,
//! k-core filter), and produces a [`Dataset`] directly usable by every
//! model in the workspace.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

use crate::{Dataset, ItemId};

/// Column layout and preprocessing options for [`load_interactions_csv`].
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field separator (`,` for CSV, `\t` for TSV, `::` not supported —
    /// pre-split such files).
    pub separator: char,
    /// Zero-based column of the user id.
    pub user_col: usize,
    /// Zero-based column of the item id.
    pub item_col: usize,
    /// Zero-based column of the rating; `None` keeps every row.
    pub rating_col: Option<usize>,
    /// Zero-based column of the timestamp; `None` keeps file order.
    pub timestamp_col: Option<usize>,
    /// Keep rows with rating ≥ this ("we binarize explicit data by
    /// discarding ratings of less than four").
    pub min_rating: f64,
    /// Skip the first line.
    pub has_header: bool,
    /// k-core filter applied after loading (the paper uses 5).
    pub k_core: usize,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            separator: ',',
            user_col: 0,
            item_col: 1,
            rating_col: Some(2),
            timestamp_col: Some(3),
            min_rating: 4.0,
            has_header: false,
            k_core: 5,
        }
    }
}

/// Error from CSV loading.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A row had fewer columns than the options require.
    BadRow {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        reason: String,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::BadRow { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Parses interactions from a reader. See [`load_interactions_csv`].
pub fn read_interactions(
    r: impl Read,
    opts: &CsvOptions,
    name: &str,
) -> Result<Dataset, LoadError> {
    let reader = BufReader::new(r);
    // (user_key, item_key, timestamp) triples.
    let mut rows: Vec<(String, String, f64)> = Vec::new();
    let needed = opts
        .user_col
        .max(opts.item_col)
        .max(opts.rating_col.unwrap_or(0))
        .max(opts.timestamp_col.unwrap_or(0));
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if (i == 0 && opts.has_header) || line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(opts.separator).map(str::trim).collect();
        if fields.len() <= needed {
            return Err(LoadError::BadRow {
                line: i + 1,
                reason: format!(
                    "expected at least {} columns, got {}",
                    needed + 1,
                    fields.len()
                ),
            });
        }
        if let Some(rc) = opts.rating_col {
            let rating: f64 = fields[rc].parse().map_err(|_| LoadError::BadRow {
                line: i + 1,
                reason: format!("unparsable rating {:?}", fields[rc]),
            })?;
            if rating < opts.min_rating {
                continue;
            }
        }
        let ts = match opts.timestamp_col {
            Some(tc) => fields[tc].parse().map_err(|_| LoadError::BadRow {
                line: i + 1,
                reason: format!("unparsable timestamp {:?}", fields[tc]),
            })?,
            None => rows.len() as f64,
        };
        rows.push((
            fields[opts.user_col].to_string(),
            fields[opts.item_col].to_string(),
            ts,
        ));
    }

    // Map string ids to dense indices; group and sort per user.
    let mut item_ids: HashMap<String, ItemId> = HashMap::new();
    let mut user_rows: HashMap<String, Vec<(f64, ItemId)>> = HashMap::new();
    for (user, item, ts) in rows {
        let next_id = item_ids.len() + 1;
        let id = *item_ids.entry(item).or_insert(next_id);
        user_rows.entry(user).or_default().push((ts, id));
    }
    // Deterministic user order.
    let mut users: Vec<(String, Vec<(f64, ItemId)>)> = user_rows.into_iter().collect();
    users.sort_by(|a, b| a.0.cmp(&b.0));
    let sequences: Vec<Vec<ItemId>> = users
        .into_iter()
        .map(|(_, mut evs)| {
            evs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            evs.into_iter().map(|(_, it)| it).collect()
        })
        .collect();
    let data = Dataset {
        name: name.to_string(),
        num_items: item_ids.len(),
        sequences,
    };
    Ok(if opts.k_core > 1 {
        data.k_core(opts.k_core)
    } else {
        data
    })
}

/// Loads a `user,item[,rating[,timestamp]]` interaction file from disk with
/// the paper's preprocessing. See [`CsvOptions`].
pub fn load_interactions_csv(
    path: impl AsRef<Path>,
    opts: &CsvOptions,
) -> Result<Dataset, LoadError> {
    let name = path
        .as_ref()
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "dataset".into());
    let file = std::fs::File::open(path.as_ref())?;
    read_interactions(file, opts, &name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts_no_core() -> CsvOptions {
        CsvOptions {
            k_core: 1,
            ..CsvOptions::default()
        }
    }

    #[test]
    fn parses_and_sorts_by_timestamp() {
        let csv = "u1,apple,5,300\nu1,pear,5,100\nu1,plum,4,200\nu2,apple,5,50\n";
        let d = read_interactions(csv.as_bytes(), &opts_no_core(), "t").unwrap();
        assert_eq!(d.num_users(), 2);
        assert_eq!(d.num_items, 3);
        // u1 chronological: pear(100), plum(200), apple(300)
        let apple = 1; // first item encountered gets id 1
        let u1 = &d.sequences[0];
        assert_eq!(u1.len(), 3);
        assert_eq!(u1[2], apple);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn binarizes_low_ratings() {
        let csv = "u1,a,5,1\nu1,b,2,2\nu1,c,4,3\n";
        let d = read_interactions(csv.as_bytes(), &opts_no_core(), "t").unwrap();
        assert_eq!(d.num_interactions(), 2, "rating-2 row dropped");
    }

    #[test]
    fn header_and_blank_lines_are_skipped() {
        let csv = "user,item,rating,ts\n\nu1,a,5,1\n";
        let opts = CsvOptions {
            has_header: true,
            k_core: 1,
            ..CsvOptions::default()
        };
        let d = read_interactions(csv.as_bytes(), &opts, "t").unwrap();
        assert_eq!(d.num_interactions(), 1);
    }

    #[test]
    fn missing_columns_error_with_line_number() {
        let csv = "u1,a,5,1\nu2,b\n";
        let err = read_interactions(csv.as_bytes(), &opts_no_core(), "t").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
    }

    #[test]
    fn rating_optional_layout() {
        let csv = "u1\ta\nu1\tb\nu2\ta\n";
        let opts = CsvOptions {
            separator: '\t',
            rating_col: None,
            timestamp_col: None,
            k_core: 1,
            ..CsvOptions::default()
        };
        let d = read_interactions(csv.as_bytes(), &opts, "t").unwrap();
        assert_eq!(d.num_users(), 2);
        assert_eq!(d.sequences[0], vec![1, 2]); // file order kept
    }

    #[test]
    fn k_core_applied() {
        // Items b,c appear once; with 2-core only 'a' survives and only
        // users with ≥2 interactions on it.
        let csv = "u1,a,5,1\nu1,a,5,2\nu1,b,5,3\nu2,c,5,1\n";
        let opts = CsvOptions {
            k_core: 2,
            ..CsvOptions::default()
        };
        let d = read_interactions(csv.as_bytes(), &opts, "t").unwrap();
        assert_eq!(d.num_users(), 1);
        assert_eq!(d.sequences[0], vec![1, 1]);
    }

    #[test]
    fn deterministic_user_order() {
        let csv = "zeta,a,5,1\nzeta,b,5,2\nalpha,a,5,1\nalpha,b,5,2\n";
        let d = read_interactions(csv.as_bytes(), &opts_no_core(), "t").unwrap();
        // alpha sorts before zeta.
        assert_eq!(d.sequences.len(), 2);
        assert_eq!(d.sequences[0], d.sequences[1], "same items for both users");
    }
}

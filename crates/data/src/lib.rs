//! Datasets for the Meta-SGCL reproduction: synthetic interaction
//! generators with planted structure, 5-core filtering, leave-one-out
//! splits, left-padded batching, and the augmentation/noise operators used
//! by the contrastive baselines and the robustness experiment (RQ5).
//!
//! # Why synthetic data
//!
//! The paper evaluates on Amazon *Clothing*, Amazon *Toys*, and
//! *MovieLens-1M*. Those datasets are not redistributable here, so
//! [`synth`] provides seeded generators whose *relative* statistics match
//! Table I (sparsity ordering, average-length ordering, Zipfian item
//! popularity) and whose generative process plants exactly the kinds of
//! structure the compared model families exploit:
//!
//! 1. **Global popularity** (Zipf) — what `Pop` captures.
//! 2. **Static user–cluster affinity** — what `BPR-MF` captures.
//! 3. **First-order cluster-transition dynamics** plus user drift — what
//!    sequential models (GRU4Rec/Caser/SASRec/…) capture.
//!
//! The mix between (2) and (3) is configurable per preset, so the dense
//! `ml1m_like` preset is strongly sequential while the sparse Amazon-style
//! presets lean on popularity/affinity, mirroring the paper's datasets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod augment;
mod batch;
pub mod io;
mod split;
pub mod synth;
mod types;

pub use augment::{
    inject_noise, item_crop, item_mask, item_reorder, ItemCorrelations, MASK_TOKEN_OFFSET,
};
pub use batch::{encode_input_only, encode_sequence, Batch, Batcher};
pub use split::{LeaveOneOut, UserSplit};
pub use types::{Dataset, DatasetStats, ItemId, PAD_ITEM};

//! Validates the static peak-memory model against reality: runs a real
//! model's forward+backward under a counting global allocator and gates
//! `measured_peak <= predicted_peak <= SLACK * measured_peak`.
//!
//! This file is its own test binary on purpose — a process-global
//! allocator counter cannot coexist with unrelated tests allocating
//! concurrently, so the single `#[test]` below owns the whole process.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use analysis::cost;
use models::audit::{audit_sequences, Auditable};
use models::{NetConfig, SasRec};
use tensor::pool;

/// The prediction is allowed to overshoot reality by at most this factor
/// (it budgets closure transients and persistent grad buffers the
/// measured run may not touch).
const SLACK: u64 = 4;

/// A byte-counting wrapper around the system allocator tracking the
/// live-bytes high-water mark.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::SeqCst) + size;
    PEAK.fetch_max(live, Ordering::SeqCst);
}

fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size, Ordering::SeqCst);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn live() -> usize {
    LIVE.load(Ordering::SeqCst)
}

/// Forgets past peaks: the high-water mark restarts from the current
/// live-byte count.
fn reset_peak() {
    PEAK.store(live(), Ordering::SeqCst);
}

#[test]
fn measured_peak_is_bounded_by_the_predicted_peak() {
    // Recycling into the tensor pool would keep "freed" buffers live from
    // the allocator's point of view; measure against the raw allocator.
    pool::set_enabled(false);

    // A geometry big enough that tensor traffic dwarfs bookkeeping noise
    // (Vecs of indices, node metadata): the tape holds several MB.
    let net = NetConfig {
        max_len: 32,
        dim: 32,
        layers: 2,
        seed: 7,
        ..NetConfig::for_items(60)
    };
    let mut model = SasRec::new(net);
    let seqs = audit_sequences(60, 16, 32);

    // Warm up lazy one-time state (telemetry registries, rng tables) so
    // the measured window sees only per-step traffic.
    {
        let warm = model.trace_stage("full", &seqs, 7);
        warm.loss.backward();
    }

    let baseline = live();
    reset_peak();
    let trace = model.trace_stage("full", &seqs, 7);
    trace.loss.backward();
    let measured = (PEAK.load(Ordering::SeqCst) - baseline) as u64;

    // Price the tape only after the measured window closes — the snapshot
    // itself allocates metadata the model deliberately excludes.
    let snap = trace.graph.snapshot();
    let report = cost::analyze(&snap, trace.loss.node_id());
    assert!(report.is_clean(), "{:?}", report.diagnostics);

    assert!(
        measured <= report.predicted_peak_bytes,
        "measured peak {measured} B exceeds predicted {} B \
         (tape {} + closures {} + backward {} + grads {} + transient {})",
        report.predicted_peak_bytes,
        report.tape_bytes,
        report.closure_bytes,
        report.backward_peak_bytes,
        report.param_grad_bytes,
        report.transient_bytes,
    );
    assert!(
        report.predicted_peak_bytes <= SLACK * measured,
        "predicted peak {} B is more than {SLACK}x the measured {measured} B — \
         the model has drifted loose",
        report.predicted_peak_bytes,
    );
}

//! Property tests for the cost/liveness model: the predicted peak of a
//! real model's training step must be monotone non-decreasing in both
//! batch size (number of users) and padded sequence length — growing the
//! workload can never shrink the predicted footprint.

use analysis::cost;
use models::audit::{audit_sequences, Auditable};
use models::{NetConfig, SasRec};
use proptest::prelude::*;

const ITEMS: usize = 10;

/// Predicted peak bytes of one SASRec training step at the given batch
/// geometry.
fn predicted_peak(users: usize, max_len: usize) -> u64 {
    let net = NetConfig {
        max_len,
        dim: 8,
        layers: 1,
        seed: 7,
        ..NetConfig::for_items(ITEMS)
    };
    let mut model = SasRec::new(net);
    let seqs = audit_sequences(ITEMS, users, max_len);
    let trace = model.trace_stage("full", &seqs, 7);
    let report = cost::analyze(&trace.graph.snapshot(), trace.loss.node_id());
    assert!(report.is_clean(), "{:?}", report.diagnostics);
    report.predicted_peak_bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn predicted_peak_is_monotone_in_batch_and_length(
        users in 1usize..5,
        max_len in 2usize..7,
    ) {
        let base = predicted_peak(users, max_len);
        let more_users = predicted_peak(users + 1, max_len);
        let longer = predicted_peak(users, max_len + 1);
        prop_assert!(
            more_users >= base,
            "peak shrank when batch grew: {base} -> {more_users} \
             (users {users}->{}, len {max_len})",
            users + 1
        );
        prop_assert!(
            longer >= base,
            "peak shrank when sequences grew: {base} -> {longer} \
             (users {users}, len {max_len}->{})",
            max_len + 1
        );
    }
}

//! Property test for the shape-inference pass: for randomized op
//! sequences, the shapes the auditor re-derives from `ShapeSig` must
//! agree with the shapes the kernels actually produced at runtime.

use analysis::check_graph;
use autograd::{Graph, Var};
use proptest::prelude::*;

/// Applies one rank-preserving op chosen by `code`, updating the expected
/// shape alongside the live graph. `k` seeds data-dependent sizes
/// (matmul inner dim, concat width).
fn apply_op(g: &Graph, cur: Var, dims: &mut [usize], code: u8, k: usize) -> Var {
    match code % 8 {
        0 => cur.relu(),
        1 => cur.scale(0.5).add_scalar(0.1),
        2 => cur.add(&g.constant(tensor::Tensor::ones(dims.to_vec()))),
        // Broadcast against a row vector of the trailing dim.
        3 => cur.mul(&g.constant(tensor::Tensor::ones(vec![dims[1]]))),
        4 => {
            dims.swap(0, 1);
            cur.transpose_last2()
        }
        5 => {
            let inner = dims[1];
            dims[1] = k;
            cur.matmul(&g.constant(tensor::Tensor::ones(vec![inner, k])))
        }
        6 => {
            dims[0] = 1;
            cur.sum_axis(0, true)
        }
        7 => {
            dims[1] *= 2;
            Var::concat(&[&cur, &cur], 1)
        }
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn inferred_shapes_match_runtime_shapes(
        r in 1usize..5,
        c in 1usize..5,
        ops in prop::collection::vec((0u8..8, 1usize..5), 0..10),
    ) {
        let g = Graph::new();
        let mut dims = vec![r, c];
        let mut cur = g.constant(tensor::Tensor::ones(dims.clone()));
        for (code, k) in ops {
            cur = apply_op(&g, cur, &mut dims, code, k);
        }
        // The tracked shape must match what the kernels produced...
        prop_assert_eq!(cur.dims(), dims);
        // ...and the auditor, re-deriving every node from its ShapeSig,
        // must agree with the recorded tape end to end.
        let diags = check_graph(&g);
        prop_assert!(diags.is_empty(), "unexpected diagnostics: {:?}", diags);
    }

    #[test]
    fn corrupted_tape_is_always_caught(
        r in 1usize..5,
        c in 1usize..5,
        ops in prop::collection::vec((0u8..8, 1usize..5), 1..10),
        extra in 7usize..31,
    ) {
        let g = Graph::new();
        let mut dims = vec![r, c];
        let mut cur = g.constant(tensor::Tensor::ones(dims.clone()));
        for (code, k) in ops {
            cur = apply_op(&g, cur, &mut dims, code, k);
        }
        let _ = cur.sum_all();
        let mut snap = g.snapshot();
        // Corrupt the final reduction's recorded shape: scalar -> [extra].
        let last = snap.len() - 1;
        snap[last].dims = vec![extra];
        let diags = analysis::check_snapshot(&snap);
        prop_assert!(
            diags.iter().any(|d| d.node == last),
            "corruption at node {} went undetected", last
        );
    }
}

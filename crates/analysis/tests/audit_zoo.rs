//! End-to-end audits over the registered model zoo, including the
//! regression test for a deliberately detached `Enc_σ'`.

use analysis::{audit_all, audit_model, check_contract, FlowClass, MODELS};
use meta_sgcl::{MetaSgcl, MetaSgclConfig};
use models::audit::{audit_sequences, Auditable};
use models::NetConfig;

fn small_meta_sgcl() -> MetaSgcl {
    MetaSgcl::new(MetaSgclConfig {
        net: NetConfig {
            max_len: 8,
            dim: 8,
            layers: 1,
            seed: 7,
            ..NetConfig::for_items(10)
        },
        ..MetaSgclConfig::for_items(10)
    })
}

#[test]
fn every_model_family_audits_clean() {
    let reports = audit_all();
    assert_eq!(
        reports.len(),
        MODELS.len(),
        "a registered model failed to build"
    );
    for report in reports {
        assert!(report.is_clean(), "audit failed:\n{report}");
        assert!(
            !report.stages.is_empty(),
            "{}: no stages traced",
            report.model
        );
    }
}

/// The gradient-flow pass must independently reproduce the training-side
/// `meta_stage_only_updates_sigma_prime` invariant: in the meta stage the
/// loss reaches exactly the two `Enc_σ'` parameters and none of the
/// frozen main modules.
#[test]
fn meta_stage_flow_reproduces_sigma_prime_invariant() {
    let report = audit_model("Meta-SGCL").expect("registered");
    let meta = report
        .stages
        .iter()
        .find(|s| s.stage == "meta")
        .expect("Meta-SGCL declares a meta stage");
    assert!(
        meta.flow.is_empty(),
        "freeze contract violated: {:?}",
        meta.flow
    );
    assert_eq!(
        meta.flow_summary.reached, 2,
        "Enc_σ' is a weight + bias pair"
    );
    assert!(
        meta.flow_summary.frozen > 10,
        "all main modules must be frozen"
    );
}

/// Regression: a forgotten stop-gradient that detaches `Enc_σ'` from the
/// contrastive loss must be flagged `Dead` — the meta stage would then
/// silently train nothing at all.
#[test]
fn detached_sigma_prime_is_flagged_dead() {
    let model = small_meta_sgcl();
    let contract = model
        .audit_contracts()
        .into_iter()
        .find(|c| c.stage == "meta")
        .expect("meta contract");
    let seqs = audit_sequences(10, 6, 8);
    let trace = model.audit_trace_meta_detached(&seqs, 7);
    let (violations, summary) =
        check_contract(&trace.graph.snapshot(), trace.loss.node_id(), &contract);
    assert_eq!(
        violations.len(),
        contract.reached.len(),
        "every Enc_σ' parameter must be flagged"
    );
    for v in &violations {
        assert_eq!(v.expected, FlowClass::Reached);
        assert_eq!(v.actual, FlowClass::Dead, "param `{}`", v.param);
    }
    // The frozen side of the contract still holds — only σ' is broken.
    assert_eq!(summary.frozen, contract.frozen.len());
    assert_eq!(summary.reached, 0);
}

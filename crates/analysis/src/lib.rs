//! **Static graph auditor** for the Meta-SGCL workspace.
//!
//! Training in this repo runs on a define-by-run tape ([`autograd::Graph`]).
//! Because every op records a declarative [`autograd::ShapeSig`] and its
//! parameter provenance, a captured tape can be *audited* without re-running
//! any kernels. This crate implements three passes over such tapes:
//!
//! 1. **Shape inference** ([`shape`]) — re-derives every node's output
//!    shape from its inputs via the op's shape signature and reports any
//!    disagreement with what the kernel actually produced, blamed on the
//!    precise op.
//! 2. **Gradient flow** ([`flow`]) — walks the tape from the loss head the
//!    way backward does and classifies every parameter as *reached*,
//!    *frozen*, or *dead*, then checks the model's declared per-stage
//!    freeze contracts (e.g. Meta-SGCL's meta stage must reach `Enc_σ'`
//!    and nothing else).
//! 3. **Numeric sanitation** ([`autograd::numeric`], surfaced through
//!    [`registry`]) — scans activations and gradients for NaN / Inf /
//!    exploding norms with per-op blame.
//!
//! The [`registry`] builds each model family in the zoo at a small audit
//! configuration and runs all three passes over every declared training
//! stage; `msgc check [--model <name> | --all]` is the CLI front end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flow;
pub mod registry;
pub mod shape;

pub use flow::{check_contract, classify, reachable_from, FlowClass, FlowSummary, FlowViolation};
pub use registry::{
    audit_all, audit_model, audit_model_with_fault, build, AuditReport, Fault, StageReport, MODELS,
};
pub use shape::{check_graph, check_snapshot, ShapeDiagnostic};

//! **Static graph auditor** for the Meta-SGCL workspace.
//!
//! Training in this repo runs on a define-by-run tape ([`autograd::Graph`]).
//! Because every op records a declarative [`autograd::ShapeSig`] and its
//! parameter provenance, a captured tape can be *audited* without re-running
//! any kernels. This crate implements three passes over such tapes:
//!
//! 1. **Shape inference** ([`shape`]) — re-derives every node's output
//!    shape from its inputs via the op's shape signature and reports any
//!    disagreement with what the kernel actually produced, blamed on the
//!    precise op.
//! 2. **Gradient flow** ([`flow`]) — walks the tape from the loss head the
//!    way backward does and classifies every parameter as *reached*,
//!    *frozen*, or *dead*, then checks the model's declared per-stage
//!    freeze contracts (e.g. Meta-SGCL's meta stage must reach `Enc_σ'`
//!    and nothing else).
//! 3. **Numeric sanitation** ([`autograd::numeric`], surfaced through
//!    [`registry`]) — scans activations and gradients for NaN / Inf /
//!    exploding norms with per-op blame.
//! 4. **Cost / liveness** ([`cost`]) — prices every node in FLOPs and
//!    bytes from its shape signature, replays the backward pass's
//!    allocation schedule, and predicts the peak live bytes of one
//!    forward+backward step plus the `tensor::pool` size classes it
//!    exercises. A counting-allocator integration test pins the
//!    prediction against reality.
//! 5. **Determinism** ([`determinism`]) — checks that every op carries a
//!    reassociation class ([`tensor::determinism`]) and that every
//!    parallel-reduced path is composed only of fixed-order ops, and
//!    audits the SIMD kernel registry: an op that gains a SIMD kernel
//!    without a declared class — or a fixed-order op whose kernel
//!    reassociates — fails the audit.
//! 6. **Frozen parity** ([`parity`]) — statically diffs the op sequence
//!    of each autograd scoring forward against the declared trace of its
//!    tape-free `Frozen*` twin, so editing either side fails the audit.
//!
//! The [`registry`] builds each model family in the zoo at a small audit
//! configuration and runs every pass over every declared training stage;
//! `msgc check [--model <name> | --all]` is the CLI front end and
//! [`report::to_json`] renders the machine-readable `audit.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod determinism;
pub mod flow;
pub mod parity;
pub mod registry;
pub mod report;
pub mod shape;

pub use cost::{CostDiagnostic, CostReport, PoolClass};
pub use determinism::{
    check_simd_registry, check_simd_registry_with, DeterminismFinding, DeterminismSummary,
    SimdRegistryFinding, SimdRegistrySummary,
};
pub use flow::{check_contract, classify, reachable_from, FlowClass, FlowSummary, FlowViolation};
pub use parity::{ParityDiagnostic, ParityReport};
pub use registry::{
    audit_all, audit_model, audit_model_with_fault, build, AuditReport, Fault, StageReport, MODELS,
};
pub use shape::{check_graph, check_snapshot, check_snapshot_in, ShapeDiagnostic};

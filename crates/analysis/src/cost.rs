//! The cost/liveness pass: prices a captured tape in FLOPs and bytes and
//! predicts the peak live memory of one forward+backward step, entirely
//! from the recorded [`autograd::NodeInfo`] metadata — no kernel runs.
//!
//! The model mirrors the runtime's actual retention behaviour:
//!
//! * **Tape residency** — `GraphInner` keeps every node's output tensor
//!   alive until the graph drops, and `Graph::param` *clones* parameter
//!   values onto the tape, so the forward's floor is the sum of all node
//!   output bytes ([`CostReport::tape_bytes`]).
//! * **Closure captures** — every differentiable op also moves tensor
//!   clones into its backward closure (a matmul retains both operands, an
//!   `exp` its output, ...); [`autograd::capture_bytes`] declares each
//!   op's retention and the pass sums it over nodes that require grad
//!   ([`CostReport::closure_bytes`]).
//! * **Backward liveness** — `backward_with` walks ids in reverse,
//!   allocates a node's adjoint at its first deposit, and frees it
//!   (`recycle`) right after the node is processed. The pass replays that
//!   schedule over the reachable subgraph and records the high-water mark
//!   ([`CostReport::backward_peak_bytes`]).
//! * **Closure transients** — a backward closure may hold short-lived
//!   temporaries (and accumulate-case gradients) on top of the deposit
//!   schedule; the pass budgets a per-node allowance of twice the node's
//!   input+output bytes and keeps the maximum
//!   ([`CostReport::transient_bytes`]).
//!
//! The headline [`CostReport::predicted_peak_bytes`] is the sum of those
//! terms plus the persistent parameter-gradient buffers; the
//! `peak_alloc` integration test pins it against a counting global
//! allocator (`measured <= predicted <= slack * measured`).
//!
//! A tape whose recorded shapes disagree with its own shape signatures
//! cannot be priced honestly; such nodes are reported as
//! [`CostDiagnostic`]s and fail the audit.

use autograd::{NodeInfo, ShapeSig};
use tensor::pool;

use crate::flow::reachable_from;

/// Per-node transient allowance multiplier (see module docs).
const TRANSIENT_FACTOR: u64 = 2;

/// One size class of tensors the [`tensor::pool`] would cache, with how
/// many tape allocations fall into it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolClass {
    /// Element count of the class (all members allocate exactly this).
    pub numel: usize,
    /// Tape nodes of this size — each is one pooled allocation per step.
    pub allocations: usize,
}

impl PoolClass {
    /// Steady-state allocations the pool cannot absorb for this class:
    /// anything beyond [`pool::PER_CLASS_CAP`] recycled buffers falls
    /// through to the system allocator every step.
    pub fn overflow(&self) -> usize {
        self.allocations.saturating_sub(pool::PER_CLASS_CAP)
    }
}

/// One reason the tape could not be priced.
#[derive(Debug, Clone)]
pub struct CostDiagnostic {
    /// Tape id of the offending node.
    pub node: usize,
    /// Op name of the offending node.
    pub op: &'static str,
    /// What disagreed.
    pub message: String,
}

impl std::fmt::Display for CostDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op `{}` (node {}): {}", self.op, self.node, self.message)
    }
}

/// The cost pass's findings for one traced stage.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// Total floating-point operations of the forward pass (FMA = 2).
    pub flops: u64,
    /// Bytes resident on the tape itself (every node's output, leaves
    /// included — parameters are cloned onto the tape).
    pub tape_bytes: u64,
    /// Tensor bytes retained inside backward closures (operand/output
    /// clones of differentiable nodes; see [`autograd::capture_bytes`]).
    pub closure_bytes: u64,
    /// High-water mark of backward adjoints under the real deposit/free
    /// schedule.
    pub backward_peak_bytes: u64,
    /// Persistent gradient buffers of reachable trainable parameters.
    pub param_grad_bytes: u64,
    /// Largest per-node closure-transient allowance (see module docs).
    pub transient_bytes: u64,
    /// Predicted peak live bytes of one forward+backward step.
    pub predicted_peak_bytes: u64,
    /// Pool size classes this tape exercises (numel >=
    /// [`pool::MIN_POOLED_LEN`]), descending by element count.
    pub pool_classes: Vec<PoolClass>,
    /// Nodes that could not be priced (recorded/inferred disagreement).
    pub diagnostics: Vec<CostDiagnostic>,
}

impl CostReport {
    /// True when every node priced cleanly.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

fn numel(dims: &[usize]) -> u64 {
    dims.iter().product::<usize>() as u64
}

/// Prices a tape snapshot and predicts the peak live bytes of one
/// forward+backward step rooted at `loss`.
pub fn analyze(nodes: &[NodeInfo], loss: usize) -> CostReport {
    let mut flops = 0u64;
    let mut tape_bytes = 0u64;
    let mut closure_bytes = 0u64;
    let mut transient_bytes = 0u64;
    let mut diagnostics = Vec::new();
    let mut class_counts: Vec<(usize, usize)> = Vec::new(); // (numel, count)

    for n in nodes {
        let in_dims: Vec<&[usize]> = n.inputs.iter().map(|&i| nodes[i].dims.as_slice()).collect();
        // A tape whose recorded shapes disagree with its own signatures
        // would be priced off fiction; refuse and report instead.
        match n.sig.infer(&in_dims) {
            Ok(Some(inferred)) if inferred != n.dims => diagnostics.push(CostDiagnostic {
                node: n.id,
                op: n.op,
                message: format!(
                    "refusing to price: signature infers {inferred:?} but the \
                     recorded output shape is {:?}",
                    n.dims
                ),
            }),
            Err(e) => diagnostics.push(CostDiagnostic {
                node: n.id,
                op: n.op,
                message: format!("refusing to price: shape rule rejected the inputs: {e}"),
            }),
            Ok(_) => {}
        }
        let bytes = ShapeSig::out_bytes(&n.dims);
        flops += n.sig.flops(&in_dims, &n.dims);
        tape_bytes += bytes;
        // Closures (and their captures) only survive recording when the
        // node requires grad.
        if n.requires_grad && !matches!(n.sig, ShapeSig::Leaf) {
            match autograd::capture_bytes(n.op, &n.sig, &in_dims, &n.dims) {
                Some(b) => closure_bytes += b,
                None => diagnostics.push(CostDiagnostic {
                    node: n.id,
                    op: n.op,
                    message: "refusing to price: op has no declared closure-capture \
                              model (autograd::capture_bytes)"
                        .into(),
                }),
            }
        }
        if !matches!(n.sig, ShapeSig::Leaf) {
            let in_bytes: u64 = in_dims.iter().map(|d| numel(d) * 4).sum();
            transient_bytes = transient_bytes.max(TRANSIENT_FACTOR * (bytes + in_bytes));
        }
        let ne = numel(&n.dims) as usize;
        if ne >= pool::MIN_POOLED_LEN {
            match class_counts.iter_mut().find(|(c, _)| *c == ne) {
                Some((_, count)) => *count += 1,
                None => class_counts.push((ne, 1)),
            }
        }
    }

    let (backward_peak_bytes, param_grad_bytes) = simulate_backward(nodes, loss);
    let predicted_peak_bytes =
        tape_bytes + closure_bytes + backward_peak_bytes + param_grad_bytes + transient_bytes;

    class_counts.sort_by_key(|c| std::cmp::Reverse(c.0));
    CostReport {
        flops,
        tape_bytes,
        closure_bytes,
        backward_peak_bytes,
        param_grad_bytes,
        transient_bytes,
        predicted_peak_bytes,
        pool_classes: class_counts
            .into_iter()
            .map(|(numel, allocations)| PoolClass { numel, allocations })
            .collect(),
        diagnostics,
    }
}

/// Replays the backward pass's allocation schedule: adjoints allocate at
/// first deposit and free right after their node is processed; gradients
/// of trainable parameter leaves land in persistent buffers instead.
///
/// Returns `(adjoint high-water bytes, persistent param-grad bytes)`.
fn simulate_backward(nodes: &[NodeInfo], loss: usize) -> (u64, u64) {
    let visited = reachable_from(nodes, loss);
    if !visited.get(loss).copied().unwrap_or(false) {
        return (0, 0);
    }
    let bytes = |id: usize| ShapeSig::out_bytes(&nodes[id].dims);
    let mut allocated = vec![false; nodes.len()];
    let mut param_grad = 0u64;
    // Seed: d loss / d loss.
    allocated[loss] = true;
    let mut live = bytes(loss);
    let mut peak = live;
    for id in (0..=loss).rev() {
        if !visited[id] || !allocated[id] {
            continue;
        }
        if matches!(nodes[id].sig, ShapeSig::Leaf) {
            if nodes[id].param.as_ref().is_some_and(|p| p.trainable) {
                param_grad += bytes(id);
            }
        } else {
            // The closure deposits one gradient per differentiable input;
            // first deposits allocate, later ones accumulate in place.
            for &j in &nodes[id].inputs {
                if visited[j] && !allocated[j] {
                    allocated[j] = true;
                    live += bytes(j);
                }
            }
            peak = peak.max(live);
        }
        // `grad.recycle()` (or the deposit hand-off) frees this adjoint.
        live -= bytes(id);
    }
    (peak, param_grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::{Graph, Parameter};
    use tensor::Tensor;

    #[test]
    fn linear_chain_is_priced_exactly() {
        let g = Graph::new();
        let a = g.constant(Tensor::ones(vec![4, 8]));
        let b = g.constant(Tensor::ones(vec![8, 16]));
        let loss = a.matmul(&b).relu().sum_all();
        let snap = g.snapshot();
        let r = analyze(&snap, loss.node_id());
        assert!(r.is_clean());
        // matmul 2*4*16*8 + relu 4*16 + sum 4*16
        assert_eq!(r.flops, 2 * 4 * 16 * 8 + 64 + 64);
        // two leaves + matmul + relu + scalar sum, 4 bytes each element
        assert_eq!(r.tape_bytes, (32 + 128 + 64 + 64 + 1) * 4);
        // constants require no grad, so no closure survives recording
        assert_eq!(r.closure_bytes, 0);
        assert!(r.predicted_peak_bytes > r.tape_bytes);
    }

    #[test]
    fn backward_peak_tracks_the_deposit_schedule() {
        let w = Parameter::shared("w", Tensor::ones(vec![8, 8]));
        let g = Graph::new();
        let x = g.constant(Tensor::ones(vec![8, 8]));
        let loss = g.param(&w).matmul(&x).sum_all();
        let snap = g.snapshot();
        let r = analyze(&snap, loss.node_id());
        // Trainable w: its gradient is a persistent 8x8 buffer.
        assert_eq!(r.param_grad_bytes, 8 * 8 * 4);
        // Adjoints: scalar seed + matmul adjoint live together at peak.
        assert!(r.backward_peak_bytes >= 8 * 8 * 4);
        // The matmul closure retains clones of both operands.
        assert_eq!(r.closure_bytes, 2 * 8 * 8 * 4);
    }

    #[test]
    fn unreachable_loss_prices_no_backward() {
        let g = Graph::new();
        let x = g.constant(Tensor::ones(vec![4]));
        let loss = x.sum_all(); // no grad path: constants are frozen
        let r = analyze(&g.snapshot(), loss.node_id());
        assert_eq!(r.backward_peak_bytes, 0);
        assert_eq!(r.param_grad_bytes, 0);
    }

    #[test]
    fn inconsistent_shapes_refuse_to_price() {
        let g = Graph::new();
        let a = g.constant(Tensor::ones(vec![2, 3]));
        let b = g.constant(Tensor::ones(vec![3, 4]));
        let m = a.matmul(&b);
        let loss = m.sum_all();
        let mut snap = g.snapshot();
        snap[m.node_id()].dims = vec![2, 9];
        let r = analyze(&snap, loss.node_id());
        assert!(!r.is_clean());
        assert_eq!(r.diagnostics[0].op, "matmul");
    }

    #[test]
    fn pool_classes_count_only_poolable_sizes() {
        let g = Graph::new();
        let big = pool::MIN_POOLED_LEN;
        let a = g.constant(Tensor::ones(vec![big]));
        let b = g.constant(Tensor::ones(vec![big]));
        let small = g.constant(Tensor::ones(vec![4]));
        let _ = a.add(&b);
        let _ = small.square();
        let r = analyze(&g.snapshot(), 0);
        assert_eq!(r.pool_classes.len(), 1);
        assert_eq!(r.pool_classes[0].numel, big);
        assert_eq!(r.pool_classes[0].allocations, 3);
        assert_eq!(r.pool_classes[0].overflow(), 0);
    }
}

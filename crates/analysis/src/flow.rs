//! The gradient-flow pass: walks a tape's `inputs` edges in reverse from
//! the loss head — the exact traversal the backward pass performs — and
//! classifies every contracted parameter as reached, frozen, or dead.

use autograd::{NodeInfo, ParamRef};
use models::audit::StageContract;

/// How gradient flow treats one parameter in one traced stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowClass {
    /// At least one trainable leaf of the parameter is reachable from the
    /// loss: the backward pass will deposit gradient.
    Reached,
    /// The parameter is on the tape but was entered frozen
    /// (`requires_grad = false` on every leaf): gradient is blocked by
    /// design.
    Frozen,
    /// The parameter is trainable but gradient can never reach it — it is
    /// absent from the tape, or every path from the loss is severed (e.g.
    /// by a `detach`).
    Dead,
}

impl std::fmt::Display for FlowClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowClass::Reached => write!(f, "reached"),
            FlowClass::Frozen => write!(f, "frozen"),
            FlowClass::Dead => write!(f, "dead"),
        }
    }
}

/// One freeze-contract violation.
#[derive(Debug, Clone)]
pub struct FlowViolation {
    /// The parameter's name.
    pub param: String,
    /// What the stage contract declares.
    pub expected: FlowClass,
    /// What the traced tape actually does.
    pub actual: FlowClass,
}

impl std::fmt::Display for FlowViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parameter `{}`: contract says {}, tape says {}",
            self.param, self.expected, self.actual
        )
    }
}

/// Marks every node whose gradient the backward pass would compute,
/// starting from `root` (the loss head).
///
/// This mirrors `backward` exactly: a node participates iff it requires
/// grad and is connected to the root through inputs that also require
/// grad.
pub fn reachable_from(nodes: &[NodeInfo], root: usize) -> Vec<bool> {
    let mut visited = vec![false; nodes.len()];
    if root >= nodes.len() || !nodes[root].requires_grad {
        return visited;
    }
    visited[root] = true;
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        for &i in &nodes[id].inputs {
            if nodes[i].requires_grad && !visited[i] {
                visited[i] = true;
                stack.push(i);
            }
        }
    }
    visited
}

/// Classifies one parameter (by identity key) against a reachability map.
pub fn classify(nodes: &[NodeInfo], visited: &[bool], key: usize) -> FlowClass {
    let mut present = false;
    let mut any_trainable = false;
    for n in nodes {
        if let Some(p) = &n.param {
            if p.key == key {
                if visited[n.id] {
                    return FlowClass::Reached;
                }
                present = true;
                any_trainable |= p.trainable;
            }
        }
    }
    if present && !any_trainable {
        FlowClass::Frozen
    } else {
        // Trainable-but-unreached and absent-from-tape both mean the
        // optimizer would silently never update this parameter.
        FlowClass::Dead
    }
}

/// Summary counts of one contract check (for report rendering).
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowSummary {
    /// Contracted parameters the loss reaches.
    pub reached: usize,
    /// Contracted parameters correctly frozen.
    pub frozen: usize,
}

/// Checks a traced stage against its declared freeze contract.
///
/// Returns the violations (empty = contract holds) plus summary counts.
/// A parameter the contract expects *reached* must classify as
/// [`FlowClass::Reached`]; a parameter expected *frozen* must not.
pub fn check_contract(
    nodes: &[NodeInfo],
    loss: usize,
    contract: &StageContract,
) -> (Vec<FlowViolation>, FlowSummary) {
    let visited = reachable_from(nodes, loss);
    let mut violations = Vec::new();
    let mut summary = FlowSummary::default();
    let name = |p: &ParamRef| p.borrow().name.clone();
    for p in &contract.reached {
        let actual = classify(nodes, &visited, p.key());
        if actual == FlowClass::Reached {
            summary.reached += 1;
        } else {
            violations.push(FlowViolation {
                param: name(p),
                expected: FlowClass::Reached,
                actual,
            });
        }
    }
    for p in &contract.frozen {
        let actual = classify(nodes, &visited, p.key());
        if actual == FlowClass::Reached {
            violations.push(FlowViolation {
                param: name(p),
                expected: FlowClass::Frozen,
                actual,
            });
        } else {
            summary.frozen += 1;
        }
    }
    (violations, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::{Graph, Parameter};
    use models::audit::StageContract;
    use tensor::Tensor;

    #[test]
    fn reached_frozen_and_dead_are_distinguished() {
        let w = Parameter::shared("w", Tensor::ones(vec![2]));
        let f = Parameter::shared("f", Tensor::ones(vec![2]));
        f.borrow_mut().trainable = false;
        let d = Parameter::shared("d", Tensor::ones(vec![2]));

        let g = Graph::new();
        let loss = g
            .param(&w)
            .add(&g.param(&f))
            .add(&g.param(&d).detach())
            .sum_all();
        let snap = g.snapshot();
        let visited = reachable_from(&snap, loss.node_id());
        assert_eq!(classify(&snap, &visited, w.key()), FlowClass::Reached);
        assert_eq!(classify(&snap, &visited, f.key()), FlowClass::Frozen);
        assert_eq!(classify(&snap, &visited, d.key()), FlowClass::Dead);
    }

    #[test]
    fn contract_violations_are_reported_with_names() {
        let w = Parameter::shared("w", Tensor::ones(vec![2]));
        let d = Parameter::shared("dead_one", Tensor::ones(vec![2]));
        let g = Graph::new();
        // `d` never enters the graph at all.
        let loss = g.param(&w).sum_all();
        let contract = StageContract::full(vec![w.clone(), d.clone()]);
        let (violations, summary) = check_contract(&g.snapshot(), loss.node_id(), &contract);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].param, "dead_one");
        assert_eq!(violations[0].actual, FlowClass::Dead);
        assert_eq!(summary.reached, 1);
    }

    #[test]
    fn frozen_param_reached_violates_freeze_contract() {
        let w = Parameter::shared("w", Tensor::ones(vec![2]));
        let g = Graph::new();
        let loss = g.param(&w).square().sum_all();
        let contract = StageContract {
            stage: "meta".into(),
            reached: vec![],
            frozen: vec![w.clone()],
        };
        let (violations, _) = check_contract(&g.snapshot(), loss.node_id(), &contract);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].expected, FlowClass::Frozen);
        assert_eq!(violations[0].actual, FlowClass::Reached);
    }
}

//! Machine-readable audit output: serialises [`AuditReport`]s into the
//! JSON document `msgc check --audit-json` writes and CI uploads as an
//! artifact.
//!
//! The workspace has no serde; this is a small hand-rolled writer over
//! the report types (mirroring `telemetry::json` on the parse side).
//! Findings are serialised through their `Display` forms — the JSON is a
//! record of what the auditor said, not a second schema to keep in sync
//! with every pass's internals.

use crate::registry::AuditReport;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn string_array<T: std::fmt::Display>(items: &[T]) -> String {
    let parts: Vec<String> = items
        .iter()
        .map(|i| format!("\"{}\"", escape(&i.to_string())))
        .collect();
    format!("[{}]", parts.join(","))
}

/// Serialises audit reports as a JSON document:
///
/// ```json
/// {"models": [{"model": "...", "clean": true,
///              "stages": [{"stage": "full", "nodes": 123, ...}],
///              "parity": {...} | null}]}
/// ```
pub fn to_json(reports: &[AuditReport]) -> String {
    let mut models = Vec::new();
    for r in reports {
        let mut stages = Vec::new();
        for s in &r.stages {
            let pool: Vec<String> = s
                .cost
                .pool_classes
                .iter()
                .map(|c| {
                    format!(
                        "{{\"numel\":{},\"allocations\":{},\"overflow\":{}}}",
                        c.numel,
                        c.allocations,
                        c.overflow()
                    )
                })
                .collect();
            stages.push(format!(
                concat!(
                    "{{\"stage\":\"{stage}\",\"nodes\":{nodes},\"clean\":{clean},",
                    "\"flow_reached\":{reached},\"flow_frozen\":{frozen},",
                    "\"flops\":{flops},\"tape_bytes\":{tape},",
                    "\"closure_bytes\":{clo},",
                    "\"backward_peak_bytes\":{bwd},\"param_grad_bytes\":{pg},",
                    "\"transient_bytes\":{tr},\"predicted_peak_bytes\":{peak},",
                    "\"pool_classes\":[{pool}],",
                    "\"fixed_order_nodes\":{fo},\"reassoc_safe_nodes\":{rs},",
                    "\"shape\":{shape},\"flow\":{flow},\"numeric\":{numeric},",
                    "\"cost\":{cost},\"determinism\":{det}}}"
                ),
                stage = escape(&s.stage),
                nodes = s.nodes,
                clean = s.is_clean(),
                reached = s.flow_summary.reached,
                frozen = s.flow_summary.frozen,
                flops = s.cost.flops,
                tape = s.cost.tape_bytes,
                clo = s.cost.closure_bytes,
                bwd = s.cost.backward_peak_bytes,
                pg = s.cost.param_grad_bytes,
                tr = s.cost.transient_bytes,
                peak = s.cost.predicted_peak_bytes,
                pool = pool.join(","),
                fo = s.determinism_summary.fixed_order,
                rs = s.determinism_summary.reassoc_safe,
                shape = string_array(&s.shape),
                flow = string_array(&s.flow),
                numeric = string_array(&s.numeric),
                cost = string_array(&s.cost.diagnostics),
                det = string_array(&s.determinism),
            ));
        }
        let parity = match &r.parity {
            None => "null".to_string(),
            Some(p) => format!(
                concat!(
                    "{{\"path\":\"{path}\",\"clean\":{clean},",
                    "\"declared_ops\":{dl},\"actual_ops\":{al},",
                    "\"diagnostics\":{diags}}}"
                ),
                path = escape(&p.path),
                clean = p.is_clean(),
                dl = p.declared_len,
                al = p.actual_len,
                diags = string_array(&p.diagnostics),
            ),
        };
        models.push(format!(
            "{{\"model\":\"{}\",\"clean\":{},\"stages\":[{}],\"parity\":{}}}",
            escape(&r.model),
            r.is_clean(),
            stages.join(","),
            parity
        ));
    }
    format!("{{\"models\":[{}]}}\n", models.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{audit_model, audit_model_with_fault, Fault};
    use telemetry::json::{self, Json};

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn clean_report_round_trips_through_the_telemetry_parser() {
        let report = audit_model("GRU4Rec").expect("registered");
        let doc = json::parse(to_json(&[report]).trim()).expect("valid JSON");
        let models = doc.get("models").and_then(Json::as_arr).expect("models");
        assert_eq!(models.len(), 1);
        let m = &models[0];
        assert_eq!(m.get("model").and_then(Json::as_str), Some("GRU4Rec"));
        assert_eq!(m.get("clean").and_then(Json::as_bool), Some(true));
        let stages = m.get("stages").and_then(Json::as_arr).expect("stages");
        assert!(stages[0].get("flops").and_then(Json::as_num).unwrap() > 0.0);
        assert!(
            stages[0]
                .get("predicted_peak_bytes")
                .and_then(Json::as_num)
                .unwrap()
                > 0.0
        );
        let parity = m.get("parity").expect("parity object");
        assert_eq!(parity.get("clean").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn faulty_report_serialises_its_findings() {
        let report = audit_model_with_fault("SASRec", Fault::Shape).expect("registered");
        let text = to_json(&[report]);
        let doc = json::parse(text.trim()).expect("valid JSON");
        let m = &doc.get("models").and_then(Json::as_arr).expect("models")[0];
        assert_eq!(m.get("clean").and_then(Json::as_bool), Some(false));
        let stage = &m.get("stages").and_then(Json::as_arr).expect("stages")[0];
        let shapes = stage.get("shape").and_then(Json::as_arr).expect("shape");
        assert!(!shapes.is_empty());
    }
}

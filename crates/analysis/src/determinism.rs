//! The determinism pass: statically verifies that every op on an audited
//! tape carries a reassociation class ([`tensor::determinism`]) and that
//! every parallel-reduced path — GEMM accumulation chains, the executor's
//! mean reduction, InfoNCE / softmax / logsumexp denominators,
//! cross-entropy row sums — is composed only of
//! [`ReassocClass::FixedOrder`] ops.
//!
//! This is the contract the SIMD micro-kernels ([`tensor::simd`]) satisfy:
//! a kernel may vectorise a `ReassocSafe` op freely, but a `FixedOrder`
//! op's accumulation order is bitwise-contractual. Flipping a reduction's
//! class (the `--inject-fault reassoc` hook, via `overrides`) must trip
//! this pass. The companion [`check_simd_registry`] audit cross-checks the
//! SIMD kernel registry itself: every vectorised op must carry a class,
//! and fixed-order ops may only ship order-preserving kernels.

use autograd::NodeInfo;
use tensor::determinism::{is_reduction, reassoc_class, SIMD_OPS};
use tensor::{ReassocClass, SimdPath};

/// One determinism finding on one tape node.
#[derive(Debug, Clone)]
pub struct DeterminismFinding {
    /// Tape id of the offending node.
    pub node: usize,
    /// Op name of the offending node.
    pub op: &'static str,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for DeterminismFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op `{}` (node {}): {}", self.op, self.node, self.message)
    }
}

/// Class tallies over one tape (for report rendering).
#[derive(Debug, Clone, Copy, Default)]
pub struct DeterminismSummary {
    /// Nodes classified fixed-order (reduction-bearing).
    pub fixed_order: usize,
    /// Nodes classified reassociation-safe.
    pub reassoc_safe: usize,
}

/// Runs the determinism pass with per-op class overrides (fault injection
/// and what-if analysis). An override replaces the registry class for
/// every node with that op name.
pub fn check_snapshot_with(
    nodes: &[NodeInfo],
    overrides: &[(&str, ReassocClass)],
) -> (Vec<DeterminismFinding>, DeterminismSummary) {
    let mut findings = Vec::new();
    let mut summary = DeterminismSummary::default();
    for n in nodes {
        let class = overrides
            .iter()
            .find(|(op, _)| *op == n.op)
            .map(|&(_, c)| c)
            .or_else(|| reassoc_class(n.op));
        match class {
            None => findings.push(DeterminismFinding {
                node: n.id,
                op: n.op,
                message: "op has no reassociation class in the registry \
                          (tensor::determinism::CLASSIFIED_OPS)"
                    .into(),
            }),
            Some(ReassocClass::FixedOrder) => summary.fixed_order += 1,
            Some(ReassocClass::ReassocSafe) => {
                summary.reassoc_safe += 1;
                if is_reduction(n.op) {
                    findings.push(DeterminismFinding {
                        node: n.id,
                        op: n.op,
                        message: "parallel-reduced op is classified reassoc-safe; \
                                  its accumulation order must stay fixed for \
                                  bitwise reproducibility"
                            .into(),
                    });
                }
            }
        }
    }
    (findings, summary)
}

/// Runs the determinism pass with the registry classes as-is.
pub fn check_snapshot(nodes: &[NodeInfo]) -> (Vec<DeterminismFinding>, DeterminismSummary) {
    check_snapshot_with(nodes, &[])
}

/// The op name of the first reduction-bearing node on the tape, if any —
/// the fault-injection target for `--inject-fault reassoc`.
pub fn first_reduction_op(nodes: &[NodeInfo]) -> Option<&'static str> {
    nodes.iter().map(|n| n.op).find(|op| is_reduction(op))
}

/// One finding from the SIMD kernel-registry audit (table-level, not
/// tied to a tape node).
#[derive(Debug, Clone)]
pub struct SimdRegistryFinding {
    /// The offending op name.
    pub op: String,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SimdRegistryFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SIMD op `{}`: {}", self.op, self.message)
    }
}

/// Tallies over the SIMD kernel registry (for report rendering).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimdRegistrySummary {
    /// Ops with an order-preserving SIMD path (bitwise-equal to scalar).
    pub order_preserving: usize,
    /// Ops with a reassociating SIMD path (only legal on reassoc-safe ops).
    pub reassociating: usize,
}

impl SimdRegistrySummary {
    /// Total number of ops with a SIMD kernel.
    pub fn total(&self) -> usize {
        self.order_preserving + self.reassociating
    }
}

/// Audits the SIMD kernel registry ([`tensor::determinism::SIMD_OPS`])
/// against the reassociation-class registry, with injection hooks:
/// `extra_simd` simulates ops gaining a SIMD kernel (what-if / fault
/// injection), `class_overrides` replaces registry classes as in
/// [`check_snapshot_with`]. Two invariants are enforced:
///
/// 1. every op with a SIMD kernel must carry a reassociation class —
///    a kernel added without deciding its class fails the audit;
/// 2. a [`ReassocClass::FixedOrder`] op may only use a
///    [`SimdPath::OrderPreserving`] kernel — a reassociating kernel on a
///    fixed-order reduction would change bits across dispatch levels.
pub fn check_simd_registry_with(
    extra_simd: &[(&str, SimdPath)],
    class_overrides: &[(&str, ReassocClass)],
) -> (Vec<SimdRegistryFinding>, SimdRegistrySummary) {
    let mut findings = Vec::new();
    let mut summary = SimdRegistrySummary::default();
    let entries = SIMD_OPS
        .iter()
        .map(|&(op, path)| (op, path))
        .chain(extra_simd.iter().copied());
    for (op, path) in entries {
        match path {
            SimdPath::OrderPreserving => summary.order_preserving += 1,
            SimdPath::Reassociating => summary.reassociating += 1,
        }
        let class = class_overrides
            .iter()
            .find(|(name, _)| *name == op)
            .map(|&(_, c)| c)
            .or_else(|| reassoc_class(op));
        match class {
            None => findings.push(SimdRegistryFinding {
                op: op.to_string(),
                message: "op has a SIMD kernel but no reassociation class \
                          (tensor::determinism::CLASSIFIED_OPS); declare its \
                          class before vectorising it"
                    .into(),
            }),
            Some(ReassocClass::FixedOrder) if path == SimdPath::Reassociating => {
                findings.push(SimdRegistryFinding {
                    op: op.to_string(),
                    message: "fixed-order op declares a reassociating SIMD path; \
                              its accumulation order is bitwise-contractual, so \
                              only an order-preserving kernel is legal"
                        .into(),
                })
            }
            Some(_) => {}
        }
    }
    (findings, summary)
}

/// Audits the SIMD kernel registry as shipped (no injection).
pub fn check_simd_registry() -> (Vec<SimdRegistryFinding>, SimdRegistrySummary) {
    check_simd_registry_with(&[], &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::Graph;
    use tensor::Tensor;

    fn softmax_tape() -> Graph {
        let g = Graph::new();
        let a = g.constant(Tensor::ones(vec![2, 3]));
        let b = g.constant(Tensor::ones(vec![3, 4]));
        let _ = a.matmul(&b).softmax_last().sum_all();
        g
    }

    #[test]
    fn healthy_tape_is_clean_and_tallied() {
        let g = softmax_tape();
        let (findings, summary) = check_snapshot(&g.snapshot());
        assert!(findings.is_empty(), "{findings:?}");
        // matmul + softmax_last + sum_all are the reductions.
        assert_eq!(summary.fixed_order, 3);
        assert_eq!(summary.reassoc_safe, 2); // the two constant leaves
    }

    #[test]
    fn flipped_reduction_class_is_detected() {
        let g = softmax_tape();
        let snap = g.snapshot();
        let target = first_reduction_op(&snap).expect("tape has reductions");
        let (findings, _) = check_snapshot_with(&snap, &[(target, ReassocClass::ReassocSafe)]);
        assert!(!findings.is_empty());
        assert_eq!(findings[0].op, target);
        assert!(findings[0].message.contains("reassoc-safe"));
    }

    #[test]
    fn override_to_fixed_order_is_harmless() {
        let g = softmax_tape();
        let (findings, _) =
            check_snapshot_with(&g.snapshot(), &[("constant", ReassocClass::FixedOrder)]);
        assert!(findings.is_empty());
    }

    #[test]
    fn shipped_simd_registry_is_clean() {
        let (findings, summary) = check_simd_registry();
        assert!(findings.is_empty(), "{findings:?}");
        assert!(summary.total() >= 7, "GEMM family + elementwise expected");
        assert_eq!(
            summary.reassociating, 0,
            "all shipped kernels preserve order"
        );
    }

    #[test]
    fn unclassified_simd_op_is_detected() {
        let (findings, _) =
            check_simd_registry_with(&[("warp_reduce", SimdPath::OrderPreserving)], &[]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].op, "warp_reduce");
        assert!(findings[0].message.contains("no reassociation class"));
    }

    #[test]
    fn reassociating_kernel_on_fixed_order_op_is_detected() {
        // Simulate matmul's kernel being rewritten with wide accumulators.
        let (findings, _) = check_simd_registry_with(&[("matmul", SimdPath::Reassociating)], &[]);
        assert!(findings
            .iter()
            .any(|f| f.op == "matmul" && f.message.contains("reassociating")));
    }

    #[test]
    fn reassociating_kernel_on_reassoc_safe_op_is_legal() {
        let (findings, summary) =
            check_simd_registry_with(&[("relu", SimdPath::Reassociating)], &[]);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(summary.reassociating, 1);
    }

    #[test]
    fn class_override_flips_simd_verdict() {
        // Flipping add to FixedOrder makes its (order-preserving) kernel
        // still legal; flipping it while injecting a reassociating path
        // must trip the audit.
        let (clean, _) = check_simd_registry_with(&[], &[("add", ReassocClass::FixedOrder)]);
        assert!(clean.is_empty());
        let (findings, _) = check_simd_registry_with(
            &[("gelu", SimdPath::Reassociating)],
            &[("gelu", ReassocClass::FixedOrder)],
        );
        assert!(findings.iter().any(|f| f.op == "gelu"));
    }
}

//! The determinism pass: statically verifies that every op on an audited
//! tape carries a reassociation class ([`tensor::determinism`]) and that
//! every parallel-reduced path — GEMM accumulation chains, the executor's
//! mean reduction, InfoNCE / softmax / logsumexp denominators,
//! cross-entropy row sums — is composed only of
//! [`ReassocClass::FixedOrder`] ops.
//!
//! This is the contract the upcoming SIMD micro-kernels (ROADMAP item 3)
//! must satisfy: a kernel may vectorise a `ReassocSafe` op freely, but a
//! `FixedOrder` op's accumulation order is bitwise-contractual. Flipping a
//! reduction's class (the `--inject-fault reassoc` hook, via `overrides`)
//! must trip this pass.

use autograd::NodeInfo;
use tensor::determinism::{is_reduction, reassoc_class};
use tensor::ReassocClass;

/// One determinism finding on one tape node.
#[derive(Debug, Clone)]
pub struct DeterminismFinding {
    /// Tape id of the offending node.
    pub node: usize,
    /// Op name of the offending node.
    pub op: &'static str,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for DeterminismFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op `{}` (node {}): {}", self.op, self.node, self.message)
    }
}

/// Class tallies over one tape (for report rendering).
#[derive(Debug, Clone, Copy, Default)]
pub struct DeterminismSummary {
    /// Nodes classified fixed-order (reduction-bearing).
    pub fixed_order: usize,
    /// Nodes classified reassociation-safe.
    pub reassoc_safe: usize,
}

/// Runs the determinism pass with per-op class overrides (fault injection
/// and what-if analysis). An override replaces the registry class for
/// every node with that op name.
pub fn check_snapshot_with(
    nodes: &[NodeInfo],
    overrides: &[(&str, ReassocClass)],
) -> (Vec<DeterminismFinding>, DeterminismSummary) {
    let mut findings = Vec::new();
    let mut summary = DeterminismSummary::default();
    for n in nodes {
        let class = overrides
            .iter()
            .find(|(op, _)| *op == n.op)
            .map(|&(_, c)| c)
            .or_else(|| reassoc_class(n.op));
        match class {
            None => findings.push(DeterminismFinding {
                node: n.id,
                op: n.op,
                message: "op has no reassociation class in the registry \
                          (tensor::determinism::CLASSIFIED_OPS)"
                    .into(),
            }),
            Some(ReassocClass::FixedOrder) => summary.fixed_order += 1,
            Some(ReassocClass::ReassocSafe) => {
                summary.reassoc_safe += 1;
                if is_reduction(n.op) {
                    findings.push(DeterminismFinding {
                        node: n.id,
                        op: n.op,
                        message: "parallel-reduced op is classified reassoc-safe; \
                                  its accumulation order must stay fixed for \
                                  bitwise reproducibility"
                            .into(),
                    });
                }
            }
        }
    }
    (findings, summary)
}

/// Runs the determinism pass with the registry classes as-is.
pub fn check_snapshot(nodes: &[NodeInfo]) -> (Vec<DeterminismFinding>, DeterminismSummary) {
    check_snapshot_with(nodes, &[])
}

/// The op name of the first reduction-bearing node on the tape, if any —
/// the fault-injection target for `--inject-fault reassoc`.
pub fn first_reduction_op(nodes: &[NodeInfo]) -> Option<&'static str> {
    nodes.iter().map(|n| n.op).find(|op| is_reduction(op))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::Graph;
    use tensor::Tensor;

    fn softmax_tape() -> Graph {
        let g = Graph::new();
        let a = g.constant(Tensor::ones(vec![2, 3]));
        let b = g.constant(Tensor::ones(vec![3, 4]));
        let _ = a.matmul(&b).softmax_last().sum_all();
        g
    }

    #[test]
    fn healthy_tape_is_clean_and_tallied() {
        let g = softmax_tape();
        let (findings, summary) = check_snapshot(&g.snapshot());
        assert!(findings.is_empty(), "{findings:?}");
        // matmul + softmax_last + sum_all are the reductions.
        assert_eq!(summary.fixed_order, 3);
        assert_eq!(summary.reassoc_safe, 2); // the two constant leaves
    }

    #[test]
    fn flipped_reduction_class_is_detected() {
        let g = softmax_tape();
        let snap = g.snapshot();
        let target = first_reduction_op(&snap).expect("tape has reductions");
        let (findings, _) = check_snapshot_with(&snap, &[(target, ReassocClass::ReassocSafe)]);
        assert!(!findings.is_empty());
        assert_eq!(findings[0].op, target);
        assert!(findings[0].message.contains("reassoc-safe"));
    }

    #[test]
    fn override_to_fixed_order_is_harmless() {
        let g = softmax_tape();
        let (findings, _) =
            check_snapshot_with(&g.snapshot(), &[("constant", ReassocClass::FixedOrder)]);
        assert!(findings.is_empty());
    }
}

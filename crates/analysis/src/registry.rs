//! The model zoo registry and the audit driver: builds each model family
//! at a small audit-sized configuration, traces every declared training
//! stage, and runs the static passes (shape, gradient-flow, numeric,
//! cost/liveness, determinism, frozen-parity) over the captured tapes.

use autograd::numeric::{scan_gradients, scan_graph, NumericIssue};
use autograd::ShapeSig;
use meta_sgcl::{MetaSgcl, MetaSgclConfig};
use models::audit::{audit_sequences, Auditable};
use models::{
    Acvae, Bert4Rec, Caser, Cl4SRec, ContrastVae, DuoRec, Gru4Rec, NetConfig, SasRec, Vsan,
};
use tensor::bug::OrBug;
use tensor::ReassocClass;

use crate::cost::{self, CostReport};
use crate::determinism::{self, DeterminismFinding, DeterminismSummary};
use crate::flow::{check_contract, FlowSummary, FlowViolation};
use crate::parity::{self, ParityReport};
use crate::shape::{check_snapshot_in, ShapeDiagnostic};

/// Norm ceiling for the numeric pass — matches the training sanitizer.
pub const NORM_LIMIT: f32 = 1e6;

/// Every registered model family, by canonical name.
pub const MODELS: &[&str] = &[
    "SASRec",
    "BERT4Rec",
    "GRU4Rec",
    "Caser",
    "CL4SRec",
    "DuoRec",
    "VSAN",
    "ACVAE",
    "ContrastVAE",
    "Meta-SGCL",
];

const AUDIT_ITEMS: usize = 10;
const AUDIT_USERS: usize = 6;
const AUDIT_LEN: usize = 8;
const AUDIT_SEED: u64 = 7;

fn audit_net() -> NetConfig {
    NetConfig {
        max_len: AUDIT_LEN,
        dim: 8,
        layers: 1,
        seed: AUDIT_SEED,
        ..NetConfig::for_items(AUDIT_ITEMS)
    }
}

/// Builds a registered model at its audit configuration. `None` when the
/// name matches no registered family (matching is case-insensitive).
pub fn build(name: &str) -> Option<Box<dyn Auditable>> {
    let canonical = MODELS
        .iter()
        .find(|m| m.eq_ignore_ascii_case(name))
        .copied()?;
    let net = audit_net();
    Some(match canonical {
        "SASRec" => Box::new(SasRec::new(net)),
        "BERT4Rec" => Box::new(Bert4Rec::new(net)),
        "GRU4Rec" => Box::new(Gru4Rec::new(AUDIT_ITEMS, AUDIT_LEN, 8, AUDIT_SEED)),
        "Caser" => Box::new(Caser::new(AUDIT_ITEMS, 4, 8, AUDIT_SEED)),
        "CL4SRec" => Box::new(Cl4SRec::new(net)),
        "DuoRec" => Box::new(DuoRec::new(net)),
        "VSAN" => Box::new(Vsan::new(net, 0.2)),
        "ACVAE" => Box::new(Acvae::new(net)),
        "ContrastVAE" => Box::new(ContrastVae::new(net, 0.1, 0.2)),
        "Meta-SGCL" => Box::new(MetaSgcl::new(MetaSgclConfig {
            net,
            ..MetaSgclConfig::for_items(AUDIT_ITEMS)
        })),
        _ => unreachable!("name came from MODELS"),
    })
}

/// A fault to inject before auditing, for exercising the detectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Corrupt a recorded output shape in the traced tape.
    Shape,
    /// Skip the stage-2 freeze (Meta-SGCL only): the meta stage then
    /// wrongly reaches the main parameters.
    Freeze,
    /// Flip the first reduction op's reassociation class to
    /// reassoc-safe — the determinism pass must refuse it.
    Reassoc,
    /// Corrupt a recorded output shape so the cost pass refuses to price
    /// the tape.
    Cost,
    /// Desynchronise the declared frozen-forward op trace from the tape
    /// (models with a frozen twin only).
    Parity,
}

/// The static passes' findings for one traced stage.
#[derive(Debug)]
pub struct StageReport {
    /// Stage name (`full`, `meta`, ...).
    pub stage: String,
    /// Number of tape nodes audited.
    pub nodes: usize,
    /// Shape-inference disagreements.
    pub shape: Vec<ShapeDiagnostic>,
    /// Freeze-contract violations.
    pub flow: Vec<FlowViolation>,
    /// Contract-satisfaction counts for the flow pass.
    pub flow_summary: FlowSummary,
    /// NaN / Inf / exploding-norm findings in activations and gradients.
    pub numeric: Vec<NumericIssue>,
    /// FLOP / byte pricing and the peak-liveness prediction.
    pub cost: CostReport,
    /// Determinism findings (unclassified ops, reassociable reductions).
    pub determinism: Vec<DeterminismFinding>,
    /// Reassociation-class tallies for the determinism pass.
    pub determinism_summary: DeterminismSummary,
}

impl StageReport {
    /// True when every pass came back empty.
    pub fn is_clean(&self) -> bool {
        self.shape.is_empty()
            && self.flow.is_empty()
            && self.numeric.is_empty()
            && self.cost.is_clean()
            && self.determinism.is_empty()
    }
}

/// The full audit result for one model family.
#[derive(Debug)]
pub struct AuditReport {
    /// Canonical model name.
    pub model: String,
    /// One report per declared training stage.
    pub stages: Vec<StageReport>,
    /// Frozen-forward op-sequence parity, for models with a tape-free
    /// frozen twin (`None` = the family declares no frozen scoring path).
    pub parity: Option<ParityReport>,
}

impl AuditReport {
    /// True when every stage is clean and the parity check (if declared)
    /// holds.
    pub fn is_clean(&self) -> bool {
        self.stages.iter().all(StageReport::is_clean)
            && self.parity.as_ref().is_none_or(ParityReport::is_clean)
    }
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let verdict = if self.is_clean() { "ok" } else { "FAIL" };
        writeln!(f, "{} ... {verdict}", self.model)?;
        for s in &self.stages {
            writeln!(
                f,
                "  stage `{}`: {} nodes, {} reached / {} frozen per contract",
                s.stage, s.nodes, s.flow_summary.reached, s.flow_summary.frozen
            )?;
            writeln!(
                f,
                "    cost: {} flops, tape {} B (+{} B in closures), predicted peak {} B",
                s.cost.flops, s.cost.tape_bytes, s.cost.closure_bytes, s.cost.predicted_peak_bytes
            )?;
            writeln!(
                f,
                "    determinism: {} fixed-order / {} reassoc-safe nodes",
                s.determinism_summary.fixed_order, s.determinism_summary.reassoc_safe
            )?;
            for d in &s.shape {
                writeln!(f, "    shape: {d}")?;
            }
            for v in &s.flow {
                writeln!(f, "    flow: {v}")?;
            }
            for n in &s.numeric {
                writeln!(f, "    numeric: {n}")?;
            }
            for d in &s.cost.diagnostics {
                writeln!(f, "    cost: {d}")?;
            }
            for d in &s.determinism {
                writeln!(f, "    determinism: {d}")?;
            }
        }
        if let Some(p) = &self.parity {
            writeln!(f, "  frozen-parity {p}")?;
        }
        Ok(())
    }
}

fn run_passes(model: &mut dyn Auditable, fault: Option<Fault>) -> AuditReport {
    let seqs = audit_sequences(AUDIT_ITEMS, AUDIT_USERS, AUDIT_LEN);
    let name = model.audit_name();
    let contracts = model.audit_contracts();
    let mut stages = Vec::new();
    for contract in &contracts {
        let trace = model.trace_stage(&contract.stage, &seqs, AUDIT_SEED);
        let mut snap = trace.graph.snapshot();
        if matches!(fault, Some(Fault::Shape | Fault::Cost)) {
            inject_shape_fault(&mut snap);
        }
        let origin = format!("{name}/{}", contract.stage);
        let shape = check_snapshot_in(&snap, &origin);
        let (flow, flow_summary) = check_contract(&snap, trace.loss.node_id(), contract);
        let mut numeric = scan_graph(&trace.graph, NORM_LIMIT);
        if trace.loss.requires_grad() {
            numeric.extend(scan_gradients(&trace.loss.backward_collect(), NORM_LIMIT));
        }
        let cost = cost::analyze(&snap, trace.loss.node_id());
        let overrides = reassoc_overrides(&snap, fault);
        let (determinism, determinism_summary) =
            determinism::check_snapshot_with(&snap, &overrides);
        stages.push(StageReport {
            stage: contract.stage.clone(),
            nodes: snap.len(),
            shape,
            flow,
            flow_summary,
            numeric,
            cost,
            determinism,
            determinism_summary,
        });
    }
    let parity = model.frozen_parity(&seqs).map(|mut check| {
        if fault == Some(Fault::Parity) {
            parity::inject_parity_fault(&mut check);
        }
        parity::diff(&check)
    });
    AuditReport {
        model: name,
        stages,
        parity,
    }
}

/// The determinism pass's class overrides for a fault run: flip the first
/// reduction op found on the tape to reassoc-safe.
fn reassoc_overrides(
    snap: &[autograd::NodeInfo],
    fault: Option<Fault>,
) -> Vec<(&'static str, ReassocClass)> {
    if fault != Some(Fault::Reassoc) {
        return Vec::new();
    }
    determinism::first_reduction_op(snap)
        .map(|op| vec![(op, ReassocClass::ReassocSafe)])
        .unwrap_or_default()
}

/// Corrupts the recorded output shape of the last non-leaf tape node,
/// simulating a kernel that produced the wrong shape.
fn inject_shape_fault(snap: &mut [autograd::NodeInfo]) {
    if let Some(n) = snap
        .iter_mut()
        .rev()
        .find(|n| !matches!(n.sig, ShapeSig::Leaf))
    {
        n.dims.push(31);
    }
}

/// Audits one model family. `None` when the name is unknown.
pub fn audit_model(name: &str) -> Option<AuditReport> {
    let mut model = build(name)?;
    Some(run_passes(model.as_mut(), None))
}

/// Audits one model family with a fault injected first. `None` when the
/// name is unknown.
///
/// [`Fault::Freeze`] only applies to Meta-SGCL (the one multi-stage
/// family) and [`Fault::Parity`] to families with a frozen twin; other
/// models fall back to a normal audit.
pub fn audit_model_with_fault(name: &str, fault: Fault) -> Option<AuditReport> {
    if fault == Fault::Freeze {
        if !name.eq_ignore_ascii_case("Meta-SGCL") {
            return audit_model(name);
        }
        let model = MetaSgcl::new(MetaSgclConfig {
            net: audit_net(),
            ..MetaSgclConfig::for_items(AUDIT_ITEMS)
        });
        let seqs = audit_sequences(AUDIT_ITEMS, AUDIT_USERS, AUDIT_LEN);
        let contract = model
            .audit_contracts()
            .into_iter()
            .find(|c| c.stage == "meta")
            .or_bug("Meta-SGCL declares a meta stage");
        let trace = model.audit_trace_meta_unfrozen(&seqs, AUDIT_SEED);
        let snap = trace.graph.snapshot();
        let shape = check_snapshot_in(&snap, "Meta-SGCL/meta");
        let (flow, flow_summary) = check_contract(&snap, trace.loss.node_id(), &contract);
        let numeric = scan_graph(&trace.graph, NORM_LIMIT);
        let cost = cost::analyze(&snap, trace.loss.node_id());
        let (determinism, determinism_summary) = determinism::check_snapshot(&snap);
        let parity = model.frozen_parity(&seqs).map(|c| parity::diff(&c));
        return Some(AuditReport {
            model: "Meta-SGCL".into(),
            stages: vec![StageReport {
                stage: contract.stage.clone(),
                nodes: snap.len(),
                shape,
                flow,
                flow_summary,
                numeric,
                cost,
                determinism,
                determinism_summary,
            }],
            parity,
        });
    }
    let mut model = build(name)?;
    Some(run_passes(model.as_mut(), Some(fault)))
}

/// Audits every registered model family.
pub fn audit_all() -> Vec<AuditReport> {
    MODELS.iter().filter_map(|name| audit_model(name)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::determinism::reassoc_class;

    #[test]
    fn every_registered_model_builds() {
        for name in MODELS {
            assert!(build(name).is_some(), "{name} missing from build()");
        }
        assert!(build("NoSuchModel").is_none());
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(build("sasrec").is_some());
        assert!(build("meta-sgcl").is_some());
    }

    #[test]
    fn fused_matmul_ops_are_traced_and_audit_clean() {
        // The tied-softmax logits rewrite routes every full-vocab scoring
        // matmul through the fused NT kernel; the auditor must know its
        // shape rule (no UnknownOp) and the tapes must stay clean.
        let seqs = audit_sequences(AUDIT_ITEMS, AUDIT_USERS, AUDIT_LEN);
        for name in ["SASRec", "GRU4Rec", "Caser"] {
            let mut model = build(name).expect("registered");
            let contract = &model.audit_contracts()[0];
            let trace = model.trace_stage(&contract.stage, &seqs, AUDIT_SEED);
            let snap = trace.graph.snapshot();
            assert!(
                snap.iter().any(|n| matches!(n.sig, ShapeSig::MatmulTransB)),
                "{name} tape should contain a fused NT matmul"
            );
            let report = audit_model(name).expect("registered");
            assert!(report.is_clean(), "{report}");
        }
    }

    /// Registry completeness, derived from the tapes themselves: every op
    /// any audited stage records must carry a reassociation class and a
    /// shape signature that reproduces the recorded output shape. No
    /// hardcoded op list — adding a new `Var` op and forgetting either
    /// piece of metadata fails here.
    #[test]
    fn every_audited_op_is_fully_registered() {
        let seqs = audit_sequences(AUDIT_ITEMS, AUDIT_USERS, AUDIT_LEN);
        for name in MODELS {
            let mut model = build(name).expect("registered");
            for contract in model.audit_contracts() {
                let trace = model.trace_stage(&contract.stage, &seqs, AUDIT_SEED);
                let snap = trace.graph.snapshot();
                for n in &snap {
                    assert!(
                        reassoc_class(n.op).is_some(),
                        "{name}/{}: op `{}` (node {}) has no reassociation class",
                        contract.stage,
                        n.op,
                        n.id
                    );
                    let in_dims: Vec<&[usize]> =
                        n.inputs.iter().map(|&i| snap[i].dims.as_slice()).collect();
                    let inferred = n.sig.infer(&in_dims).unwrap_or_else(|e| {
                        panic!(
                            "{name}/{}: op `{}` (node {}) shape rule rejected \
                             its own recorded inputs: {e}",
                            contract.stage, n.op, n.id
                        )
                    });
                    if let Some(inferred) = inferred {
                        assert_eq!(
                            inferred, n.dims,
                            "{name}/{}: op `{}` (node {}) signature does not \
                             reproduce the recorded output shape",
                            contract.stage, n.op, n.id
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cost_reports_are_populated() {
        let report = audit_model("SASRec").expect("registered");
        let s = &report.stages[0];
        assert!(s.cost.is_clean());
        assert!(s.cost.flops > 0);
        assert!(s.cost.tape_bytes > 0);
        assert!(s.cost.predicted_peak_bytes > s.cost.tape_bytes);
        assert!(s.determinism_summary.fixed_order > 0);
    }

    #[test]
    fn frozen_parity_is_declared_and_clean() {
        for name in ["GRU4Rec", "Meta-SGCL"] {
            let report = audit_model(name).expect("registered");
            let parity = report
                .parity
                .as_ref()
                .unwrap_or_else(|| panic!("{name} must declare a frozen-parity check"));
            assert!(parity.is_clean(), "{name}: {parity}");
            assert!(parity.actual_len > 0);
        }
    }

    #[test]
    fn shape_fault_is_detected() {
        let report = audit_model_with_fault("SASRec", Fault::Shape).expect("registered");
        assert!(!report.is_clean());
        assert!(report.stages.iter().any(|s| !s.shape.is_empty()));
        // The blame carries the model/stage origin label.
        let d = report
            .stages
            .iter()
            .flat_map(|s| &s.shape)
            .next()
            .expect("a diagnostic");
        assert_eq!(d.origin, "SASRec/full");
    }

    #[test]
    fn freeze_fault_is_detected_on_meta_sgcl() {
        let report = audit_model_with_fault("Meta-SGCL", Fault::Freeze).expect("registered");
        assert!(!report.is_clean());
        let meta = &report.stages[0];
        assert_eq!(meta.stage, "meta");
        assert!(
            !meta.flow.is_empty(),
            "unfrozen meta stage must violate the freeze contract"
        );
    }

    #[test]
    fn reassoc_fault_is_detected() {
        let report = audit_model_with_fault("SASRec", Fault::Reassoc).expect("registered");
        assert!(!report.is_clean());
        assert!(
            report.stages.iter().any(|s| !s.determinism.is_empty()),
            "flipped reduction class must trip the determinism pass"
        );
    }

    #[test]
    fn cost_fault_is_detected() {
        let report = audit_model_with_fault("GRU4Rec", Fault::Cost).expect("registered");
        assert!(!report.is_clean());
        assert!(
            report.stages.iter().any(|s| !s.cost.diagnostics.is_empty()),
            "corrupted shapes must make the cost pass refuse to price"
        );
    }

    #[test]
    fn parity_fault_is_detected() {
        let report = audit_model_with_fault("Meta-SGCL", Fault::Parity).expect("registered");
        assert!(!report.is_clean());
        let parity = report.parity.as_ref().expect("Meta-SGCL declares parity");
        assert!(!parity.is_clean());
    }
}

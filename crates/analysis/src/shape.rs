//! The shape-inference pass: re-derives every tape node's output shape
//! from its inputs via the declarative [`autograd::ShapeSig`] signatures
//! and reports any disagreement with what the kernels actually produced.

use autograd::{Graph, NodeInfo};

/// One shape finding, with op-level provenance.
#[derive(Debug, Clone)]
pub struct ShapeDiagnostic {
    /// Tape id of the offending node.
    pub node: usize,
    /// Op name of the offending node.
    pub op: &'static str,
    /// Tape ids of the op's inputs.
    pub inputs: Vec<usize>,
    /// Where the tape came from — a `model/stage` label when the audit
    /// driver supplied one, empty for ad-hoc graphs.
    pub origin: String,
    /// Human-readable description of the disagreement.
    pub message: String,
}

impl std::fmt::Display for ShapeDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.origin.is_empty() {
            write!(
                f,
                "op `{}` (node {}, inputs {:?}): {}",
                self.op, self.node, self.inputs, self.message
            )
        } else {
            write!(
                f,
                "op `{}` (node {} of `{}`, inputs {:?}): {}",
                self.op, self.node, self.origin, self.inputs, self.message
            )
        }
    }
}

/// Runs shape inference over an exported tape snapshot, blaming findings
/// on `origin` (a `model/stage` label) in addition to the node index.
///
/// Every node's output shape is re-derived from its inputs' *recorded*
/// shapes (not from previously inferred ones), so a single inconsistency
/// produces a single, precisely blamed diagnostic rather than a cascade.
pub fn check_snapshot_in(nodes: &[NodeInfo], origin: &str) -> Vec<ShapeDiagnostic> {
    let mut diags = Vec::new();
    for n in nodes {
        let in_dims: Vec<&[usize]> = n.inputs.iter().map(|&i| nodes[i].dims.as_slice()).collect();
        match n.sig.infer(&in_dims) {
            Ok(None) => {} // leaf: nothing to infer
            Ok(Some(inferred)) => {
                if inferred != n.dims {
                    let owned: Vec<Vec<usize>> = in_dims.iter().map(|d| d.to_vec()).collect();
                    diags.push(ShapeDiagnostic {
                        node: n.id,
                        op: n.op,
                        inputs: n.inputs.clone(),
                        origin: origin.into(),
                        message: format!(
                            "inferred {inferred:?} from input shapes {owned:?}, \
                             but the recorded output shape is {:?}",
                            n.dims
                        ),
                    });
                }
            }
            Err(e) => diags.push(ShapeDiagnostic {
                node: n.id,
                op: n.op,
                inputs: n.inputs.clone(),
                origin: origin.into(),
                message: format!("shape rule rejected the inputs: {e}"),
            }),
        }
    }
    diags
}

/// [`check_snapshot_in`] with no origin label (ad-hoc graphs).
pub fn check_snapshot(nodes: &[NodeInfo]) -> Vec<ShapeDiagnostic> {
    check_snapshot_in(nodes, "")
}

/// [`check_snapshot`] on a live graph.
pub fn check_graph(g: &Graph) -> Vec<ShapeDiagnostic> {
    check_snapshot(&g.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::Graph;
    use tensor::Tensor;

    #[test]
    fn healthy_graph_is_clean() {
        let g = Graph::new();
        let a = g.constant(Tensor::ones(vec![2, 3]));
        let b = g.constant(Tensor::ones(vec![3, 4]));
        let _ = a.matmul(&b).relu().sum_all();
        assert!(check_graph(&g).is_empty());
    }

    #[test]
    fn corrupted_snapshot_is_blamed_on_the_right_op() {
        let g = Graph::new();
        let a = g.constant(Tensor::ones(vec![2, 3]));
        let b = g.constant(Tensor::ones(vec![3, 4]));
        let m = a.matmul(&b);
        let _ = m.sum_all();
        let mut snap = g.snapshot();
        snap[m.node_id()].dims = vec![2, 5]; // inject a mismatch
        let diags = check_snapshot(&snap);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].node, m.node_id());
        assert_eq!(diags[0].op, "matmul");
        assert!(diags[0].message.contains("[2, 4]"), "{}", diags[0].message);
    }

    #[test]
    fn origin_label_blames_model_and_stage() {
        let g = Graph::new();
        let a = g.constant(Tensor::ones(vec![2, 3]));
        let m = a.relu();
        let _ = m.sum_all();
        let mut snap = g.snapshot();
        snap[m.node_id()].dims = vec![9];
        let diags = check_snapshot_in(&snap, "SASRec/full");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].origin, "SASRec/full");
        let shown = diags[0].to_string();
        assert!(
            shown.contains("SASRec/full") && shown.contains(&format!("node {}", m.node_id())),
            "{shown}"
        );
    }
}

//! The frozen-parity pass: statically diffs the op sequence an autograd
//! scoring forward actually records against the declared trace of its
//! tape-free `Frozen*` twin.
//!
//! PR 6's inference engine proves `score_padded` parity *numerically*
//! (bitwise-equal outputs on sampled inputs). This pass turns that into a
//! *structural* guarantee: each frozen model declares, composed from its
//! submodules' `op_trace` methods, the exact op-name sequence its autograd
//! reference produces (see [`models::audit::ParityCheck`]). Editing either
//! side — a new op in the training forward, a skipped op in the frozen
//! path — desynchronises the sequences and fails the audit without
//! running either forward's kernels to completion.

use models::audit::ParityCheck;

/// How many ops of context to show around the first divergence.
const CONTEXT: usize = 3;

/// One declared-vs-actual divergence.
#[derive(Debug, Clone)]
pub struct ParityDiagnostic {
    /// Index into the op sequences where they first disagree.
    pub index: usize,
    /// Declared op at that index (`None` = declared trace ended early).
    pub declared: Option<&'static str>,
    /// Actual tape op at that index (`None` = tape ended early).
    pub actual: Option<&'static str>,
    /// A window of both sequences around the divergence.
    pub context: String,
}

impl std::fmt::Display for ParityDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let show = |op: Option<&str>| op.unwrap_or("<end of sequence>").to_string();
        write!(
            f,
            "first divergence at op {}: declared `{}`, tape recorded `{}` ({})",
            self.index,
            show(self.declared),
            show(self.actual),
            self.context
        )
    }
}

/// The frozen-parity verdict for one model's scoring path.
#[derive(Debug, Clone)]
pub struct ParityReport {
    /// Which frozen entry point was checked (e.g. `score_padded`).
    pub path: String,
    /// Length of the declared op sequence.
    pub declared_len: usize,
    /// Length of the tape's actual op sequence.
    pub actual_len: usize,
    /// Empty when the sequences match exactly.
    pub diagnostics: Vec<ParityDiagnostic>,
}

impl ParityReport {
    /// True when declared and actual op sequences are identical.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

impl std::fmt::Display for ParityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "`{}`: {} ops, declared trace matches the tape",
                self.path, self.actual_len
            )
        } else {
            write!(
                f,
                "`{}`: declared {} ops, tape recorded {}; {}",
                self.path, self.declared_len, self.actual_len, self.diagnostics[0]
            )
        }
    }
}

fn window(ops: &[&'static str], at: usize) -> String {
    let lo = at.saturating_sub(CONTEXT);
    let hi = (at + CONTEXT + 1).min(ops.len());
    ops[lo..hi].join(" ")
}

/// Diffs a [`ParityCheck`]'s declared trace against the recorded tape.
///
/// Reports only the *first* divergence: once the sequences desynchronise,
/// every later position disagrees trivially and would drown the signal.
pub fn diff(check: &ParityCheck) -> ParityReport {
    let declared = &check.declared;
    let actual = &check.actual;
    let mut diagnostics = Vec::new();
    let n = declared.len().max(actual.len());
    for i in 0..n {
        let d = declared.get(i).copied();
        let a = actual.get(i).copied();
        if d != a {
            diagnostics.push(ParityDiagnostic {
                index: i,
                declared: d,
                actual: a,
                context: format!(
                    "declared ...{}..., tape ...{}...",
                    window(declared, i),
                    window(actual, i)
                ),
            });
            break;
        }
    }
    ParityReport {
        path: check.path.clone(),
        declared_len: declared.len(),
        actual_len: actual.len(),
        diagnostics,
    }
}

/// Desynchronises a parity check's declared trace — the fault-injection
/// hook for `--inject-fault parity`: drops the first declared op, which
/// [`diff`] must flag at or before that position.
pub fn inject_parity_fault(check: &mut ParityCheck) {
    if check.declared.is_empty() {
        check.declared.push("bogus_op");
    } else {
        check.declared.remove(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(declared: &[&'static str], actual: &[&'static str]) -> ParityCheck {
        ParityCheck {
            path: "score_padded".into(),
            declared: declared.to_vec(),
            actual: actual.to_vec(),
        }
    }

    #[test]
    fn identical_sequences_are_clean() {
        let r = diff(&check(
            &["matmul", "add", "relu"],
            &["matmul", "add", "relu"],
        ));
        assert!(r.is_clean());
        assert_eq!(r.declared_len, 3);
        assert_eq!(r.actual_len, 3);
    }

    #[test]
    fn first_divergence_is_located() {
        let r = diff(&check(
            &["matmul", "add", "relu", "matmul"],
            &["matmul", "add", "gelu", "matmul"],
        ));
        assert_eq!(r.diagnostics.len(), 1);
        let d = &r.diagnostics[0];
        assert_eq!(d.index, 2);
        assert_eq!(d.declared, Some("relu"));
        assert_eq!(d.actual, Some("gelu"));
        assert!(d.context.contains("relu") && d.context.contains("gelu"));
    }

    #[test]
    fn length_mismatch_is_a_divergence() {
        let r = diff(&check(&["matmul", "add"], &["matmul", "add", "relu"]));
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].index, 2);
        assert_eq!(r.diagnostics[0].declared, None);
        assert_eq!(r.diagnostics[0].actual, Some("relu"));
    }

    #[test]
    fn injected_fault_desynchronises() {
        let mut c = check(&["matmul", "add"], &["matmul", "add"]);
        inject_parity_fault(&mut c);
        assert!(!diff(&c).is_clean());
    }
}

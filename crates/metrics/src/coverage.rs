//! Beyond-accuracy metrics: catalog coverage and recommendation
//! concentration (Gini). Useful for diagnosing popularity bias — the
//! failure mode the paper's Fig. 6 embedding analysis is indirectly about
//! (cone-collapsed embeddings recommend the same few items to everyone).

use std::collections::HashSet;

/// Fraction of the catalog that appears in at least one user's top-k list.
///
/// `recommendations[u]` is user `u`'s recommended item list; `num_items`
/// is the catalog size (ids `1..=num_items`).
pub fn catalog_coverage(recommendations: &[Vec<usize>], num_items: usize) -> f64 {
    if num_items == 0 {
        return 0.0;
    }
    let distinct: HashSet<usize> = recommendations
        .iter()
        .flatten()
        .copied()
        .filter(|&i| i >= 1 && i <= num_items)
        .collect();
    distinct.len() as f64 / num_items as f64
}

/// Gini coefficient of how often each item is recommended: 0 = perfectly
/// even exposure, → 1 = all exposure concentrated on a few items.
pub fn recommendation_gini(recommendations: &[Vec<usize>], num_items: usize) -> f64 {
    if num_items == 0 {
        return 0.0;
    }
    let mut counts = vec![0u64; num_items + 1];
    for rec in recommendations {
        for &i in rec {
            if i >= 1 && i <= num_items {
                counts[i] += 1;
            }
        }
    }
    let mut c: Vec<u64> = counts[1..].to_vec();
    c.sort_unstable();
    let total: u64 = c.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let n = c.len() as f64;
    // Gini from the sorted-counts formula: Σ (2i − n − 1) x_i / (n Σ x).
    let mut acc = 0.0f64;
    for (i, &x) in c.iter().enumerate() {
        acc += (2.0 * (i + 1) as f64 - n - 1.0) * x as f64;
    }
    acc / (n * total as f64)
}

/// Mean intra-list distance of each top-k list under a simple item-id
/// cluster function — a cheap diversity proxy for synthetic catalogs where
/// `cluster(item)` is known.
pub fn mean_intra_list_diversity(
    recommendations: &[Vec<usize>],
    cluster: impl Fn(usize) -> usize,
) -> f64 {
    let mut total = 0.0f64;
    let mut lists = 0usize;
    for rec in recommendations {
        if rec.len() < 2 {
            continue;
        }
        let mut diff = 0usize;
        let mut pairs = 0usize;
        for i in 0..rec.len() {
            for j in i + 1..rec.len() {
                pairs += 1;
                if cluster(rec[i]) != cluster(rec[j]) {
                    diff += 1;
                }
            }
        }
        total += diff as f64 / pairs as f64;
        lists += 1;
    }
    if lists == 0 {
        0.0
    } else {
        total / lists as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_counts_distinct_items() {
        let recs = vec![vec![1, 2], vec![2, 3]];
        assert!((catalog_coverage(&recs, 6) - 0.5).abs() < 1e-12);
        assert_eq!(catalog_coverage(&[], 6), 0.0);
        // Out-of-range ids are ignored.
        assert_eq!(catalog_coverage(&[vec![0, 99]], 6), 0.0);
    }

    #[test]
    fn gini_extremes() {
        // Perfectly even: every item recommended once.
        let even: Vec<Vec<usize>> = (1..=4).map(|i| vec![i]).collect();
        assert!(recommendation_gini(&even, 4).abs() < 1e-9);
        // Fully concentrated: only item 1, many times.
        let conc = vec![vec![1], vec![1], vec![1], vec![1]];
        let g = recommendation_gini(&conc, 4);
        assert!(g > 0.7, "gini {g}");
        // Empty input.
        assert_eq!(recommendation_gini(&[], 4), 0.0);
    }

    #[test]
    fn gini_monotone_in_concentration() {
        let spread = vec![vec![1], vec![2], vec![3], vec![4]];
        let skewed = vec![vec![1], vec![1], vec![1], vec![4]];
        assert!(
            recommendation_gini(&skewed, 4) > recommendation_gini(&spread, 4),
            "more concentration ⇒ higher gini"
        );
    }

    #[test]
    fn diversity_by_cluster() {
        // Clusters: even/odd item ids.
        let cluster = |i: usize| i % 2;
        let mono = vec![vec![2, 4, 6]];
        let mixed = vec![vec![1, 2, 3]];
        assert_eq!(mean_intra_list_diversity(&mono, cluster), 0.0);
        let d = mean_intra_list_diversity(&mixed, cluster);
        assert!((d - 2.0 / 3.0).abs() < 1e-12, "{d}");
        assert_eq!(mean_intra_list_diversity(&[vec![1]], cluster), 0.0);
    }
}

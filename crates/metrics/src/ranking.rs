//! Top-k ranking metrics: Hit Ratio, NDCG, MRR.
//!
//! The protocol matches the paper: for every user, score **all** items,
//! rank them in descending order, and check where the held-out ground-truth
//! item lands. Item id 0 (padding) is never ranked.

use std::collections::BTreeMap;

/// 1-based rank of `target` in `scores`, where `scores[i]` is the score of
/// item `i` and index 0 is the padding item (ignored).
///
/// Ties are broken pessimistically: items with a strictly greater score and
/// *earlier* items with an equal score outrank the target, which makes the
/// metric deterministic and slightly conservative.
pub fn rank_of(scores: &[f32], target: usize) -> usize {
    debug_assert!(
        target >= 1 && target < scores.len(),
        "target {target} out of range"
    );
    let ts = scores[target];
    let mut rank = 1usize;
    for (i, &s) in scores.iter().enumerate().skip(1) {
        if i == target {
            continue;
        }
        if s > ts || (s == ts && i < target) {
            rank += 1;
        }
    }
    rank
}

/// Aggregated metrics for one evaluation pass.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// HR@k per cutoff.
    pub hr: BTreeMap<usize, f64>,
    /// NDCG@k per cutoff.
    pub ndcg: BTreeMap<usize, f64>,
    /// MRR@k per cutoff.
    pub mrr: BTreeMap<usize, f64>,
    /// Number of evaluated users.
    pub users: usize,
}

impl EvalReport {
    /// HR at cutoff `k` (panics if `k` was not requested).
    pub fn hr(&self, k: usize) -> f64 {
        self.hr[&k]
    }

    /// NDCG at cutoff `k`.
    pub fn ndcg(&self, k: usize) -> f64 {
        self.ndcg[&k]
    }

    /// MRR at cutoff `k`.
    pub fn mrr(&self, k: usize) -> f64 {
        self.mrr[&k]
    }

    /// HR at cutoff `k`, or `None` if `k` was not requested.
    pub fn try_hr(&self, k: usize) -> Option<f64> {
        self.hr.get(&k).copied()
    }

    /// NDCG at cutoff `k`, or `None` if `k` was not requested.
    pub fn try_ndcg(&self, k: usize) -> Option<f64> {
        self.ndcg.get(&k).copied()
    }

    /// MRR at cutoff `k`, or `None` if `k` was not requested.
    pub fn try_mrr(&self, k: usize) -> Option<f64> {
        self.mrr.get(&k).copied()
    }
}

impl std::fmt::Display for EvalReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (k, v) in &self.hr {
            write!(f, "HR@{k}={v:.4} ")?;
        }
        for (k, v) in &self.ndcg {
            write!(f, "NDCG@{k}={v:.4} ")?;
        }
        for (k, v) in &self.mrr {
            write!(f, "MRR@{k}={v:.4} ")?;
        }
        Ok(())
    }
}

/// Streaming accumulator: feed one ground-truth rank per user, then
/// [`MetricAccumulator::finish`].
#[derive(Debug, Clone)]
pub struct MetricAccumulator {
    ks: Vec<usize>,
    hr_sum: Vec<f64>,
    ndcg_sum: Vec<f64>,
    mrr_sum: Vec<f64>,
    users: usize,
}

impl MetricAccumulator {
    /// Creates an accumulator for the given cutoffs (the paper uses 5, 10).
    pub fn new(ks: &[usize]) -> Self {
        MetricAccumulator {
            ks: ks.to_vec(),
            hr_sum: vec![0.0; ks.len()],
            ndcg_sum: vec![0.0; ks.len()],
            mrr_sum: vec![0.0; ks.len()],
            users: 0,
        }
    }

    /// Records one user whose ground-truth item landed at `rank` (1-based).
    ///
    /// With a single relevant item, `NDCG@k = 1/log₂(rank+1)` when
    /// `rank ≤ k`, else 0; `MRR@k = 1/rank` when `rank ≤ k`.
    pub fn add_rank(&mut self, rank: usize) {
        debug_assert!(rank >= 1);
        self.users += 1;
        for (i, &k) in self.ks.iter().enumerate() {
            if rank <= k {
                self.hr_sum[i] += 1.0;
                self.ndcg_sum[i] += 1.0 / ((rank + 1) as f64).log2();
                self.mrr_sum[i] += 1.0 / rank as f64;
            }
        }
    }

    /// Convenience: compute the rank from full-catalog scores and record it.
    pub fn add_scores(&mut self, scores: &[f32], target: usize) {
        self.add_rank(rank_of(scores, target));
    }

    /// Finalizes the averages.
    pub fn finish(&self) -> EvalReport {
        let n = self.users.max(1) as f64;
        let collect = |sums: &[f64]| {
            self.ks
                .iter()
                .copied()
                .zip(sums.iter().map(|s| s / n))
                .collect::<BTreeMap<_, _>>()
        };
        EvalReport {
            hr: collect(&self.hr_sum),
            ndcg: collect(&self.ndcg_sum),
            mrr: collect(&self.mrr_sum),
            users: self.users,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_of_basic() {
        // scores: pad, item1=0.1, item2=0.9, item3=0.5
        let s = vec![99.0, 0.1, 0.9, 0.5];
        assert_eq!(rank_of(&s, 2), 1);
        assert_eq!(rank_of(&s, 3), 2);
        assert_eq!(rank_of(&s, 1), 3);
    }

    #[test]
    fn rank_of_ignores_padding_score() {
        let s = vec![f32::INFINITY, 0.5, 0.1];
        assert_eq!(rank_of(&s, 1), 1);
    }

    #[test]
    fn rank_of_tie_breaking_is_deterministic() {
        let s = vec![0.0, 0.5, 0.5, 0.5];
        assert_eq!(rank_of(&s, 1), 1);
        assert_eq!(rank_of(&s, 2), 2);
        assert_eq!(rank_of(&s, 3), 3);
    }

    #[test]
    fn metrics_oracle_values() {
        let mut acc = MetricAccumulator::new(&[5, 10]);
        acc.add_rank(1); // HR5=1, NDCG5=1, MRR=1
        acc.add_rank(3); // HR5=1, NDCG5=1/log2(4)=0.5, MRR=1/3
        acc.add_rank(7); // only inside k=10
        acc.add_rank(50); // outside both
        let r = acc.finish();
        assert_eq!(r.users, 4);
        assert!((r.hr(5) - 0.5).abs() < 1e-12);
        assert!((r.hr(10) - 0.75).abs() < 1e-12);
        let ndcg5 = (1.0 + 0.5) / 4.0;
        assert!((r.ndcg(5) - ndcg5).abs() < 1e-12);
        let ndcg10 = (1.0 + 0.5 + 1.0 / 8f64.log2()) / 4.0;
        assert!((r.ndcg(10) - ndcg10).abs() < 1e-9);
        let mrr10 = (1.0 + 1.0 / 3.0 + 1.0 / 7.0) / 4.0;
        assert!((r.mrr(10) - mrr10).abs() < 1e-12);
    }

    #[test]
    fn display_includes_all_three_metric_families() {
        let mut acc = MetricAccumulator::new(&[5, 10]);
        acc.add_rank(1);
        acc.add_rank(3);
        let s = acc.finish().to_string();
        for needle in [
            "HR@5=", "HR@10=", "NDCG@5=", "NDCG@10=", "MRR@5=", "MRR@10=",
        ] {
            assert!(s.contains(needle), "`{needle}` missing from `{s}`");
        }
    }

    #[test]
    fn try_accessors_mirror_indexing_without_panicking() {
        let mut acc = MetricAccumulator::new(&[5]);
        acc.add_rank(2);
        let r = acc.finish();
        assert_eq!(r.try_hr(5), Some(r.hr(5)));
        assert_eq!(r.try_ndcg(5), Some(r.ndcg(5)));
        assert_eq!(r.try_mrr(5), Some(r.mrr(5)));
        assert_eq!(r.try_hr(7), None);
        assert_eq!(r.try_ndcg(7), None);
        assert_eq!(r.try_mrr(7), None);
    }

    #[test]
    fn hr_monotone_in_k() {
        let mut acc = MetricAccumulator::new(&[1, 5, 10, 100]);
        for rank in [1usize, 2, 4, 9, 40, 80] {
            acc.add_rank(rank);
        }
        let r = acc.finish();
        assert!(r.hr(1) <= r.hr(5));
        assert!(r.hr(5) <= r.hr(10));
        assert!(r.hr(10) <= r.hr(100));
    }

    #[test]
    fn add_scores_matches_manual_rank() {
        let mut a = MetricAccumulator::new(&[5]);
        let mut b = MetricAccumulator::new(&[5]);
        let scores = vec![0.0, 0.3, 0.9, 0.5, 0.1];
        a.add_scores(&scores, 3);
        b.add_rank(rank_of(&scores, 3));
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn perfect_and_random_extremes() {
        let mut perfect = MetricAccumulator::new(&[5]);
        for _ in 0..10 {
            perfect.add_rank(1);
        }
        let r = perfect.finish();
        assert_eq!(r.hr(5), 1.0);
        assert_eq!(r.ndcg(5), 1.0);

        let mut bad = MetricAccumulator::new(&[5]);
        for _ in 0..10 {
            bad.add_rank(1000);
        }
        let r = bad.finish();
        assert_eq!(r.hr(5), 0.0);
        assert_eq!(r.ndcg(5), 0.0);
    }
}

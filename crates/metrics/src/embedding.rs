//! Item-embedding distribution analytics (Figure 6 replacement).
//!
//! The paper visualizes item embeddings with t-SNE and argues that SASRec
//! "produces a narrow cone in the latent space" while Meta-SGCL's
//! distribution "is more uniform". Cone collapse and uniformity are
//! directly measurable; this module computes:
//!
//! * **mean pairwise cosine similarity** — high values ⇒ narrow cone;
//! * **Wang–Isola uniformity loss** `log E exp(−2‖z_i − z_j‖²)` on
//!   L2-normalized embeddings — closer to 0 ⇒ *less* uniform;
//! * **effective rank** (entropy of normalized singular values of the
//!   covariance) — higher ⇒ the embedding uses more directions;
//! * a **2-D PCA projection** for plotting / CSV export.

use rand::rngs::StdRng;
use rand::Rng;
use tensor::Tensor;

/// Summary statistics of an embedding matrix `[n, d]`.
#[derive(Debug, Clone)]
pub struct EmbeddingReport {
    /// Mean pairwise cosine similarity over sampled pairs.
    pub mean_cosine: f64,
    /// Wang–Isola uniformity loss (more negative ⇒ more uniform).
    pub uniformity: f64,
    /// Effective rank `exp(H(σ̂))` of the covariance spectrum.
    pub effective_rank: f64,
    /// Fraction of variance captured by the top principal component.
    pub top1_variance_ratio: f64,
}

impl std::fmt::Display for EmbeddingReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean_cos={:.4} uniformity={:.4} eff_rank={:.2} top1_var={:.3}",
            self.mean_cosine, self.uniformity, self.effective_rank, self.top1_variance_ratio
        )
    }
}

fn normalize_rows(e: &Tensor) -> Vec<Vec<f64>> {
    let (n, d) = (e.dim(0), e.dim(1));
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let row = e.row(i);
        let norm = row
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt()
            .max(1e-12);
        out.push(row.iter().map(|&x| x as f64 / norm).collect());
    }
    let _ = d;
    out
}

/// Computes the distribution report from an embedding matrix `[n, d]`,
/// sampling `pairs` random pairs for the pairwise statistics.
pub fn analyze(e: &Tensor, pairs: usize, rng: &mut StdRng) -> EmbeddingReport {
    assert_eq!(e.ndim(), 2, "analyze expects [n, d]");
    let n = e.dim(0);
    assert!(n >= 2, "need at least two embeddings");
    let normed = normalize_rows(e);

    let mut cos_sum = 0.0f64;
    let mut unif_sum = 0.0f64;
    for _ in 0..pairs {
        let i = rng.gen_range(0..n);
        let mut j = rng.gen_range(0..n);
        while j == i {
            j = rng.gen_range(0..n);
        }
        let dot: f64 = normed[i]
            .iter()
            .zip(normed[j].iter())
            .map(|(a, b)| a * b)
            .sum();
        cos_sum += dot;
        // ‖zi − zj‖² = 2 − 2·cos for unit vectors.
        unif_sum += (-2.0 * (2.0 - 2.0 * dot)).exp();
    }
    let mean_cosine = cos_sum / pairs as f64;
    let uniformity = (unif_sum / pairs as f64).ln();

    // Use the *uncentered* second moment: a cone shows up as one dominant
    // direction (the shared mean), which centering would hide.
    let spectrum = gram_eigenvalues(e);
    let total: f64 = spectrum.iter().sum::<f64>().max(1e-18);
    let mut entropy = 0.0f64;
    for &ev in &spectrum {
        let p = (ev / total).max(1e-18);
        entropy -= p * p.ln();
    }
    EmbeddingReport {
        mean_cosine,
        uniformity,
        effective_rank: entropy.exp(),
        top1_variance_ratio: spectrum.iter().cloned().fold(0.0, f64::max) / total,
    }
}

/// Eigenvalues of the *uncentered* second-moment matrix `EᵀE/n` of
/// `e: [n, d]` — the squared singular-value spectrum of the embedding
/// matrix, which exposes cone collapse as a single dominant eigenvalue.
pub fn gram_eigenvalues(e: &Tensor) -> Vec<f64> {
    let (n, d) = (e.dim(0), e.dim(1));
    let mut gram = vec![0.0f64; d * d];
    for i in 0..n {
        let row = e.row(i);
        for a in 0..d {
            let xa = row[a] as f64;
            for b in a..d {
                gram[a * d + b] += xa * row[b] as f64;
            }
        }
    }
    for a in 0..d {
        for b in a..d {
            gram[a * d + b] /= n as f64;
            gram[b * d + a] = gram[a * d + b];
        }
    }
    jacobi_eigenvalues(&mut gram, d)
}

/// Eigenvalues of the `d×d` covariance of `e: [n, d]`, via cyclic Jacobi
/// rotations (exact for symmetric matrices; `d` is ≤ a few hundred here).
pub fn covariance_eigenvalues(e: &Tensor) -> Vec<f64> {
    let (n, d) = (e.dim(0), e.dim(1));
    // Column means.
    let mut mean = vec![0.0f64; d];
    for i in 0..n {
        for (m, &x) in mean.iter_mut().zip(e.row(i).iter()) {
            *m += x as f64;
        }
    }
    for m in mean.iter_mut() {
        *m /= n as f64;
    }
    // Covariance (upper symmetric, stored dense).
    let mut cov = vec![0.0f64; d * d];
    for i in 0..n {
        let row = e.row(i);
        for a in 0..d {
            let xa = row[a] as f64 - mean[a];
            for b in a..d {
                let xb = row[b] as f64 - mean[b];
                cov[a * d + b] += xa * xb;
            }
        }
    }
    let denom = (n.max(2) - 1) as f64;
    for a in 0..d {
        for b in a..d {
            cov[a * d + b] /= denom;
            cov[b * d + a] = cov[a * d + b];
        }
    }
    jacobi_eigenvalues(&mut cov, d)
}

/// In-place cyclic Jacobi eigenvalue iteration for a symmetric matrix.
fn jacobi_eigenvalues(m: &mut [f64], d: usize) -> Vec<f64> {
    for _sweep in 0..60 {
        let mut off = 0.0f64;
        for p in 0..d {
            for q in p + 1..d {
                off += m[p * d + q] * m[p * d + q];
            }
        }
        if off < 1e-20 {
            break;
        }
        for p in 0..d {
            for q in p + 1..d {
                let apq = m[p * d + q];
                if apq.abs() < 1e-18 {
                    continue;
                }
                let app = m[p * d + p];
                let aqq = m[q * d + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..d {
                    let akp = m[k * d + p];
                    let akq = m[k * d + q];
                    m[k * d + p] = c * akp - s * akq;
                    m[k * d + q] = s * akp + c * akq;
                }
                for k in 0..d {
                    let apk = m[p * d + k];
                    let aqk = m[q * d + k];
                    m[p * d + k] = c * apk - s * aqk;
                    m[q * d + k] = s * apk + c * aqk;
                }
            }
        }
    }
    let mut ev: Vec<f64> = (0..d).map(|i| m[i * d + i].max(0.0)).collect();
    ev.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    ev
}

/// Projects `e: [n, d]` onto its top-2 principal components, returning
/// `(x, y)` pairs — the data behind a Fig.-6-style scatter plot.
pub fn pca_project_2d(e: &Tensor) -> Vec<(f64, f64)> {
    let (n, d) = (e.dim(0), e.dim(1));
    let mut mean = vec![0.0f64; d];
    for i in 0..n {
        for (m, &x) in mean.iter_mut().zip(e.row(i).iter()) {
            *m += x as f64;
        }
    }
    for m in mean.iter_mut() {
        *m /= n as f64;
    }
    // Power iteration for the top-2 eigenvectors of the covariance, with
    // deflation.
    let centered: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            e.row(i)
                .iter()
                .zip(mean.iter())
                .map(|(&x, m)| x as f64 - m)
                .collect()
        })
        .collect();
    let matvec = |v: &[f64], exclude: Option<&[f64]>| -> Vec<f64> {
        let mut out = vec![0.0f64; d];
        for row in &centered {
            let mut dot: f64 = row.iter().zip(v.iter()).map(|(a, b)| a * b).sum();
            if let Some(u) = exclude {
                let proj: f64 = row.iter().zip(u.iter()).map(|(a, b)| a * b).sum();
                let vu: f64 = v.iter().zip(u.iter()).map(|(a, b)| a * b).sum();
                dot -= proj * vu;
            }
            for (o, &r) in out.iter_mut().zip(row.iter()) {
                *o += dot * r;
            }
        }
        out
    };
    let power = |exclude: Option<&[f64]>| -> Vec<f64> {
        let mut v: Vec<f64> = (0..d)
            .map(|i| ((i * 37 + 11) % 97) as f64 / 97.0 - 0.5)
            .collect();
        for _ in 0..100 {
            let mut w = matvec(&v, exclude);
            if let Some(u) = exclude {
                let dot: f64 = w.iter().zip(u.iter()).map(|(a, b)| a * b).sum();
                for (wi, ui) in w.iter_mut().zip(u.iter()) {
                    *wi -= dot * ui;
                }
            }
            let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
            for wi in w.iter_mut() {
                *wi /= norm;
            }
            v = w;
        }
        v
    };
    let u1 = power(None);
    let u2 = power(Some(&u1));
    centered
        .iter()
        .map(|row| {
            let x: f64 = row.iter().zip(u1.iter()).map(|(a, b)| a * b).sum();
            let y: f64 = row.iter().zip(u2.iter()).map(|(a, b)| a * b).sum();
            (x, y)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tensor::init;

    #[test]
    fn cone_vs_uniform_is_detected() {
        let mut rng = StdRng::seed_from_u64(0);
        // "Cone": all embeddings near one direction.
        let mut cone = init::randn(&mut rng, vec![200, 16], 0.0, 0.05);
        for i in 0..200 {
            cone.row_mut(i)[0] += 1.0;
        }
        // "Uniform": isotropic Gaussian (uniform-ish on the sphere).
        let uniform = init::randn(&mut rng, vec![200, 16], 0.0, 1.0);

        let rc = analyze(&cone, 2000, &mut rng);
        let ru = analyze(&uniform, 2000, &mut rng);
        assert!(rc.mean_cosine > 0.8, "cone cosine {}", rc.mean_cosine);
        assert!(ru.mean_cosine < 0.2, "uniform cosine {}", ru.mean_cosine);
        assert!(
            ru.uniformity < rc.uniformity,
            "uniformity should be lower (better)"
        );
        assert!(ru.effective_rank > rc.effective_rank * 2.0);
    }

    #[test]
    fn covariance_eigenvalues_of_known_matrix() {
        // Two orthogonal directions with variances 4 and 1.
        let mut data = Vec::new();
        for i in 0..100 {
            let a = if i % 2 == 0 { 2.0 } else { -2.0 };
            let b = if i % 4 < 2 { 1.0 } else { -1.0 };
            data.push(a);
            data.push(b);
        }
        let e = Tensor::from_vec(data, vec![100, 2]);
        let ev = covariance_eigenvalues(&e);
        assert!((ev[0] - 4.0 * 100.0 / 99.0).abs() < 0.1, "ev0 {}", ev[0]);
        assert!((ev[1] - 1.0 * 100.0 / 99.0).abs() < 0.1, "ev1 {}", ev[1]);
    }

    #[test]
    fn pca_projection_captures_dominant_axis() {
        // Points spread along a diagonal line in 4-D.
        let mut data = Vec::new();
        for i in 0..50 {
            let t = i as f32 - 25.0;
            data.extend_from_slice(&[t, t, 0.1 * (i % 3) as f32, 0.0]);
        }
        let e = Tensor::from_vec(data, vec![50, 4]);
        let proj = pca_project_2d(&e);
        // Variance along x must dominate variance along y.
        let vx: f64 = proj.iter().map(|(x, _)| x * x).sum::<f64>() / 50.0;
        let vy: f64 = proj.iter().map(|(_, y)| y * y).sum::<f64>() / 50.0;
        assert!(vx > 50.0 * vy, "vx={vx} vy={vy}");
    }

    #[test]
    fn effective_rank_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let e = init::randn(&mut rng, vec![300, 8], 0.0, 1.0);
        let r = analyze(&e, 1000, &mut rng);
        assert!(r.effective_rank <= 8.0 + 1e-6);
        assert!(
            r.effective_rank > 6.0,
            "isotropic data should use most dims"
        );
        assert!(r.top1_variance_ratio < 0.35);
    }
}

//! Evaluation metrics for the Meta-SGCL reproduction.
//!
//! * [`ranking`] — HR@k, NDCG@k, MRR@k over full-catalog ranking, the
//!   protocol of the paper's Table II.
//! * [`embedding`] — item-embedding distribution analytics replacing the
//!   paper's Figure 6 t-SNE plots: mean pairwise cosine (cone collapse),
//!   Wang–Isola uniformity, spectral effective rank, and a 2-D PCA
//!   projection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
pub mod embedding;
pub mod ranking;

pub use ranking::{rank_of, EvalReport, MetricAccumulator};

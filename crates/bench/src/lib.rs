//! Experiment harness shared by the per-table/per-figure bench targets.
//!
//! Each bench target (`crates/bench/benches/*.rs`, `harness = false`)
//! regenerates one table or figure of the paper at reproduction scale and
//! prints the measured values next to the paper's reference numbers so the
//! *shape* of the result (who wins, by roughly what factor) can be checked
//! at a glance.
//!
//! Scale is controlled with `META_SGCL_SCALE`:
//! * `quick` (default) — minutes on a laptop core;
//! * `full`  — longer runs with more epochs for tighter numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paper;
pub mod zoo;

use std::time::Instant;

use meta_sgcl::{MetaSgcl, MetaSgclConfig};
use metrics::EvalReport;
use models::{evaluate_test, NetConfig, SequentialRecommender, TrainConfig};
use recdata::{synth, Dataset, LeaveOneOut};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-friendly run (default).
    Quick,
    /// Longer, tighter run.
    Full,
}

impl Scale {
    /// Reads `META_SGCL_SCALE` (`quick`/`full`).
    pub fn from_env() -> Scale {
        match std::env::var("META_SGCL_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }
}

/// One benchmark dataset with its per-scale training recipe.
pub struct Workload {
    /// The generated dataset.
    pub data: Dataset,
    /// Leave-one-out split.
    pub split: LeaveOneOut,
    /// Padded sequence length for this dataset (paper: 200 on ML-1M, 50 on
    /// Amazon; scaled down proportionally).
    pub max_len: usize,
    /// Training epochs at the chosen scale.
    pub epochs: usize,
    /// β used by the paper for this dataset (0.3 Clothing, 0.2 Toys/ML-1M).
    pub beta: f32,
    /// Mini-batch size for this workload.
    pub batch_size: usize,
    /// Worker threads for data-parallel training (from `META_SGCL_THREADS`,
    /// default 1). Results are identical for any value — see the training
    /// executor's determinism contract — only wall-clock changes.
    pub threads: usize,
}

/// Reads `META_SGCL_THREADS` (positive integer, default 1).
pub fn threads_from_env() -> usize {
    std::env::var("META_SGCL_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

impl Workload {
    /// Shared training config for this workload.
    ///
    /// Batch size is kept small (more optimizer steps per epoch) because
    /// the scaled-down corpora have only a few hundred sequences.
    pub fn train_cfg(&self, seed: u64) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            batch_size: self.batch_size,
            lr: 1e-3,
            max_len: self.max_len,
            seed,
            grad_clip: 5.0,
            verbose: false,
            threads: self.threads,
            ..TrainConfig::default()
        }
    }

    /// Architecture defaults for this workload.
    pub fn net(&self, seed: u64) -> NetConfig {
        NetConfig {
            max_len: self.max_len,
            seed,
            ..NetConfig::for_items(self.data.num_items)
        }
    }

    /// Meta-SGCL defaults for this workload.
    pub fn meta_cfg(&self, seed: u64) -> MetaSgclConfig {
        MetaSgclConfig {
            net: self.net(seed),
            beta: self.beta,
            ..MetaSgclConfig::for_items(self.data.num_items)
        }
    }
}

/// Builds the three paper workloads at the requested scale.
pub fn workloads(scale: Scale, seed: u64) -> Vec<Workload> {
    let epochs = |quick: usize, full: usize| match scale {
        Scale::Quick => quick,
        Scale::Full => full,
    };
    let threads = threads_from_env();
    vec![
        Workload {
            data: synth::generate(&synth::SynthConfig::clothing_like(seed)),
            split: LeaveOneOut::split(&synth::generate(&synth::SynthConfig::clothing_like(seed))),
            max_len: 20,
            epochs: epochs(25, 60),
            beta: 0.3,
            batch_size: 32,
            threads,
        },
        Workload {
            data: synth::generate(&synth::SynthConfig::toys_like(seed + 1)),
            split: LeaveOneOut::split(&synth::generate(&synth::SynthConfig::toys_like(seed + 1))),
            max_len: 20,
            epochs: epochs(25, 60),
            beta: 0.2,
            batch_size: 32,
            threads,
        },
        Workload {
            data: synth::generate(&synth::SynthConfig::ml1m_like(seed + 2)),
            split: LeaveOneOut::split(&synth::generate(&synth::SynthConfig::ml1m_like(seed + 2))),
            max_len: 50,
            epochs: epochs(30, 60),
            beta: 0.2,
            batch_size: 16,
            threads,
        },
    ]
}

/// Builds only the named workload (`clothing-like` / `toys-like` /
/// `ml1m-like`).
pub fn workload_by_name(scale: Scale, seed: u64, name: &str) -> Workload {
    workloads(scale, seed)
        .into_iter()
        .find(|w| w.data.name == name)
        .unwrap_or_else(|| panic!("unknown workload {name}"))
}

/// Trains `model` on the workload and evaluates HR/NDCG@{5,10} on the test
/// targets. Prints a timing line.
pub fn run_model(model: &mut dyn SequentialRecommender, w: &Workload, seed: u64) -> EvalReport {
    let t0 = Instant::now();
    let train = w.split.train_sequences();
    let n_seqs = train.len();
    model.fit(&train, &w.train_cfg(seed));
    let train_secs = t0.elapsed().as_secs_f64();
    let report = evaluate_test(model, &w.split, &[5, 10]);
    eprintln!(
        "  [{}] {} trained+evaluated in {:.1?} ({:.0} seqs/s on {} thread{})",
        w.data.name,
        model.name(),
        t0.elapsed(),
        (n_seqs * w.epochs) as f64 / train_secs.max(1e-9),
        w.threads,
        if w.threads == 1 { "" } else { "s" }
    );
    report
}

/// Convenience: fresh Meta-SGCL for a workload.
pub fn meta_sgcl_for(w: &Workload, seed: u64) -> MetaSgcl {
    MetaSgcl::new(w.meta_cfg(seed))
}

/// Formats one metric row: measured value with the paper's reference in
/// parentheses.
pub fn fmt_cell(measured: f64, reference: Option<f64>) -> String {
    match reference {
        Some(r) => format!("{measured:.4} (paper {r:.4})"),
        None => format!("{measured:.4}"),
    }
}

/// Prints a markdown-ish table.
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_env_convention() {
        // Default (unset or unknown) is Quick.
        assert_eq!(Scale::from_env(), Scale::Quick);
    }

    #[test]
    fn workloads_have_expected_names_and_order() {
        let ws = workloads(Scale::Quick, 7);
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[0].data.name, "clothing-like");
        assert_eq!(ws[1].data.name, "toys-like");
        assert_eq!(ws[2].data.name, "ml1m-like");
        // ML-1M uses the longer max_len, mirroring the paper's 200 vs 50.
        assert!(ws[2].max_len > ws[0].max_len);
        assert!((ws[0].beta - 0.3).abs() < 1e-6);
    }

    #[test]
    fn workload_by_name_round_trips() {
        let w = workload_by_name(Scale::Quick, 7, "toys-like");
        assert_eq!(w.data.name, "toys-like");
    }

    #[test]
    fn fmt_cell_formats() {
        assert_eq!(fmt_cell(0.12345, None), "0.1235");
        assert_eq!(fmt_cell(0.1, Some(0.2)), "0.1000 (paper 0.2000)");
    }
}

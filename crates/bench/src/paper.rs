//! Reference numbers transcribed from the paper's tables, printed next to
//! measured values so the reader can compare shapes directly.

/// Metrics for one (model, dataset) cell of Table II:
/// `(HR@5, HR@10, NDCG@5, NDCG@10)`.
pub type Cell = (f64, f64, f64, f64);

/// Model names in Table II column order.
pub const TABLE2_MODELS: [&str; 11] = [
    "Pop",
    "BPR-MF",
    "GRU4Rec",
    "Caser",
    "SASRec",
    "BERT4Rec",
    "VSAN",
    "ACVAE",
    "DuoRec",
    "ContrastVAE",
    "Meta-SGCL",
];

/// Dataset names in Table II row-group order.
pub const TABLE2_DATASETS: [&str; 3] = ["Clothing", "Toys", "ML-1M"];

/// Table II reference values: `TABLE2[dataset][model]`.
pub const TABLE2: [[Cell; 11]; 3] = [
    // Clothing
    [
        (0.0042, 0.0076, 0.0032, 0.0045), // Pop
        (0.0067, 0.0094, 0.0052, 0.0069), // BPR-MF
        (0.0095, 0.0165, 0.0061, 0.0083), // GRU4Rec
        (0.0108, 0.0174, 0.0067, 0.0098), // Caser
        (0.0168, 0.0272, 0.0091, 0.0124), // SASRec
        (0.0125, 0.0208, 0.0075, 0.0102), // BERT4Rec
        (0.0152, 0.0246, 0.0090, 0.0106), // VSAN
        (0.0164, 0.0255, 0.0098, 0.0120), // ACVAE
        (0.0193, 0.0302, 0.0113, 0.0148), // DuoRec
        (0.0159, 0.0283, 0.0102, 0.0135), // ContrastVAE
        (0.0216, 0.0309, 0.0142, 0.0167), // Meta-SGCL
    ],
    // Toys
    [
        (0.0065, 0.0090, 0.0044, 0.0052),
        (0.0120, 0.0179, 0.0067, 0.0090),
        (0.0121, 0.0184, 0.0077, 0.0097),
        (0.0205, 0.0333, 0.0125, 0.0168),
        (0.0429, 0.0652, 0.0248, 0.0320),
        (0.0371, 0.0524, 0.0259, 0.0309),
        (0.0472, 0.0689, 0.0328, 0.0395),
        (0.0457, 0.0663, 0.0291, 0.0364),
        (0.0539, 0.0744, 0.0340, 0.0406),
        (0.0548, 0.0760, 0.0353, 0.0441),
        (0.0642, 0.0907, 0.0420, 0.0506),
    ],
    // ML-1M
    [
        (0.0078, 0.0162, 0.0052, 0.0079),
        (0.0068, 0.0162, 0.0052, 0.0079),
        (0.0763, 0.1658, 0.0385, 0.0671),
        (0.0816, 0.1593, 0.0372, 0.0624),
        (0.1087, 0.1904, 0.0638, 0.0910),
        (0.0733, 0.1323, 0.0432, 0.0619),
        (0.1210, 0.1815, 0.0634, 0.0881),
        (0.1356, 0.2033, 0.0837, 0.1145),
        (0.2038, 0.2946, 0.1390, 0.1680),
        (0.1152, 0.1894, 0.0687, 0.0935),
        (0.2387, 0.3560, 0.1622, 0.1953),
    ],
];

/// Table III (ablation) reference values: `(−clkl, −cl, −kl, full)` per
/// dataset per metric `(HR@5, HR@10, NDCG@5, NDCG@10)`.
pub const TABLE3: [(&str, [Cell; 4]); 3] = [
    (
        "Clothing",
        [
            (0.0168, 0.0272, 0.0091, 0.0124),
            (0.0191, 0.0264, 0.0132, 0.0155),
            (0.0190, 0.0265, 0.0132, 0.0156),
            (0.0216, 0.0309, 0.0142, 0.0167),
        ],
    ),
    (
        "Toys",
        [
            (0.0429, 0.0652, 0.0248, 0.0320),
            (0.0608, 0.0858, 0.0401, 0.0482),
            (0.0587, 0.0849, 0.0392, 0.0477),
            (0.0642, 0.0907, 0.0420, 0.0506),
        ],
    ),
    (
        "ML-1M",
        [
            (0.1087, 0.1904, 0.0638, 0.0910),
            (0.1748, 0.2685, 0.1153, 0.1455),
            (0.1841, 0.2748, 0.1235, 0.1528),
            (0.2387, 0.3560, 0.1622, 0.1953),
        ],
    ),
];

/// Table IV (heads) reference, Toys dataset: `(h, HR@5, HR@10, NDCG@5,
/// NDCG@10)`.
pub const TABLE4_TOYS: [(usize, Cell); 4] = [
    (1, (0.0586, 0.0812, 0.0392, 0.0465)),
    (2, (0.0642, 0.0907, 0.0420, 0.0506)),
    (4, (0.0551, 0.0782, 0.0388, 0.0462)),
    (8, (0.0562, 0.0779, 0.0392, 0.0462)),
];

/// Table V (temperature τ) reference, Toys dataset.
pub const TABLE5_TOYS: [(f32, Cell); 6] = [
    (0.05, (0.0562, 0.0791, 0.0396, 0.0470)),
    (0.1, (0.0573, 0.0803, 0.0406, 0.0480)),
    (0.5, (0.0569, 0.0794, 0.0402, 0.0474)),
    (1.0, (0.0642, 0.0907, 0.0420, 0.0506)),
    (2.0, (0.0565, 0.0789, 0.0393, 0.0464)),
    (5.0, (0.0552, 0.0744, 0.0391, 0.0453)),
];

/// Table VI (dropout) reference, Toys dataset.
pub const TABLE6_TOYS: [(f32, Cell); 5] = [
    (0.0, (0.0558, 0.0781, 0.0376, 0.0448)),
    (0.1, (0.0569, 0.0787, 0.0395, 0.0456)),
    (0.2, (0.0642, 0.0907, 0.0420, 0.0506)),
    (0.3, (0.0576, 0.0794, 0.0397, 0.0467)),
    (0.4, (0.0570, 0.0763, 0.0411, 0.0473)),
];

/// Index of a model in [`TABLE2_MODELS`].
pub fn model_index(name: &str) -> Option<usize> {
    TABLE2_MODELS.iter().position(|&m| m == name)
}

/// Reference cell for (dataset index, model name).
pub fn table2_ref(dataset: usize, model: &str) -> Option<Cell> {
    model_index(model).map(|mi| TABLE2[dataset][mi])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_sgcl_is_best_in_every_table2_cell() {
        // The headline claim: Meta-SGCL beats every baseline on every
        // dataset and metric (sanity check of the transcription).
        for row in &TABLE2 {
            let best = row[10];
            for c in &row[..10] {
                assert!(best.0 > c.0 && best.1 > c.1 && best.2 > c.2 && best.3 > c.3);
            }
        }
    }

    #[test]
    fn duorec_is_best_baseline_on_ml1m() {
        let duorec = TABLE2[2][8];
        for (m, name) in TABLE2_MODELS.iter().enumerate().take(10) {
            if *name == "DuoRec" {
                continue;
            }
            assert!(duorec.0 >= TABLE2[2][m].0, "{name} beats DuoRec on ML-1M?");
        }
    }

    #[test]
    fn ablation_full_dominates() {
        for (_ds, cells) in &TABLE3 {
            let full = cells[3];
            for c in &cells[..3] {
                assert!(full.0 > c.0 && full.1 > c.1);
            }
        }
    }

    #[test]
    fn lookups() {
        assert_eq!(model_index("Meta-SGCL"), Some(10));
        assert!(table2_ref(0, "SASRec").is_some());
        assert!(table2_ref(0, "NoSuchModel").is_none());
    }
}

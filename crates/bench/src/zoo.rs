//! Model zoo: constructs any Table II model by name for a workload.

use meta_sgcl::MetaSgcl;
use models::{
    Acvae, Bert4Rec, BprMf, Caser, ContrastVae, DuoRec, Gru4Rec, Pop, SasRec,
    SequentialRecommender, Vsan,
};

use crate::Workload;

/// All Table II model names, in column order.
pub fn all_model_names() -> Vec<&'static str> {
    crate::paper::TABLE2_MODELS.to_vec()
}

/// Builds a fresh, untrained model by its Table II name.
pub fn build(name: &str, w: &Workload, seed: u64) -> Box<dyn SequentialRecommender> {
    let net = w.net(seed);
    match name {
        "Pop" => Box::new(Pop::new(w.data.num_items)),
        "BPR-MF" => Box::new(BprMf::new(w.data.num_items, net.dim)),
        "GRU4Rec" => Box::new(Gru4Rec::new(w.data.num_items, net.max_len, net.dim, seed)),
        "Caser" => Box::new(Caser::new(w.data.num_items, 5, net.dim, seed)),
        "SASRec" => Box::new(SasRec::new(net)),
        "BERT4Rec" => Box::new(Bert4Rec::new(net)),
        "VSAN" => Box::new(Vsan::new(net, w.beta)),
        "ACVAE" => Box::new(Acvae::new(net)),
        "DuoRec" => Box::new(DuoRec::new(net)),
        "ContrastVAE" => Box::new(ContrastVae::new(net, 0.02, w.beta)),
        "Meta-SGCL" => Box::new(MetaSgcl::new(w.meta_cfg(seed))),
        other => panic!("unknown model {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{workloads, Scale};

    #[test]
    fn zoo_builds_every_table2_model() {
        let w = &workloads(Scale::Quick, 3)[1];
        for name in all_model_names() {
            let m = build(name, w, 3);
            assert_eq!(m.num_items(), w.data.num_items, "{name}");
            // Pop's display name matches; attention models report theirs.
            assert!(!m.name().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "unknown model")]
    fn zoo_rejects_unknown() {
        let w = &workloads(Scale::Quick, 3)[0];
        let _ = build("FooRec", w, 3);
    }
}

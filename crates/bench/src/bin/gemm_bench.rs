//! GEMM kernel microbenchmark (BENCH_3): fused NT/TN kernels against the
//! materialize-transpose baseline, the branch-free dense row kernel against
//! the masked zero-skip path, and one end-to-end training-throughput probe.
//!
//! Writes `BENCH_3.json` into the current directory and exits nonzero when
//! any fused kernel is slower than its baseline (the CI bench-smoke gate).
//!
//! ```sh
//! cargo run --release -p bench --bin gemm_bench
//! ```
//!
//! Iteration counts scale with `META_SGCL_SCALE` (`quick`/`full`).

use std::time::Instant;

use bench::zoo::build;
use bench::{workload_by_name, Scale};
use tensor::{ops, Tensor};

/// Best-of-`reps` mean milliseconds per call over `iters` calls.
fn time_ms(mut f: impl FnMut(), iters: usize, reps: usize) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e3 / iters as f64);
    }
    best
}

/// Deterministic pseudo-random fill in roughly [-10, 10).
fn fill(len: usize, seed: u64) -> Vec<f32> {
    let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 40) as f32 / (1u64 << 24) as f32) * 20.0 - 10.0
        })
        .collect()
}

struct KernelRow {
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
    fused_ms: f64,
    baseline_ms: f64,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.baseline_ms / self.fused_ms
    }

    fn json(&self) -> String {
        format!(
            "{{\"name\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"fused_ms\": {:.4}, \"baseline_ms\": {:.4}, \"speedup\": {:.3}}}",
            self.name,
            self.m,
            self.k,
            self.n,
            self.fused_ms,
            self.baseline_ms,
            self.speedup()
        )
    }
}

fn main() {
    let scale = Scale::from_env();
    let (iters, reps) = match scale {
        Scale::Quick => (20, 3),
        Scale::Full => (100, 5),
    };

    // Workload shapes: tied-softmax logits at two catalog sizes, an
    // attention-score block, and the flattened shared-B backward shape.
    let shapes: &[(&'static str, usize, usize, usize)] = &[
        ("logits_toys", 32, 32, 361),
        ("logits_small", 16, 32, 201),
        ("attention_scores", 40, 20, 20),
        ("logits_backward_flat", 640, 32, 361),
    ];

    let mut rows: Vec<KernelRow> = Vec::new();
    for &(name, m, k, n) in shapes {
        // NT: A[m,k] · B[n,k]ᵀ — fused kernel vs transpose-then-matmul.
        let a = Tensor::from_vec(fill(m * k, 11), vec![m, k]);
        let b = Tensor::from_vec(fill(n * k, 23), vec![n, k]);
        let fused_ms = time_ms(
            || {
                ops::matmul_transb(&a, &b).expect("shapes agree").recycle();
            },
            iters,
            reps,
        );
        let baseline_ms = time_ms(
            || {
                let bt = ops::transpose_last2(&b).expect("rank 2");
                drop(ops::matmul(&a, &bt).expect("shapes agree"));
            },
            iters,
            reps,
        );
        rows.push(KernelRow {
            name,
            m,
            k,
            n,
            fused_ms,
            baseline_ms,
        });

        // TN: A[k,m]ᵀ · B[k,n] — the gradient-side kernel at the same shape.
        let at = Tensor::from_vec(fill(k * m, 31), vec![k, m]);
        let bt = Tensor::from_vec(fill(k * n, 43), vec![k, n]);
        let fused_tn_ms = time_ms(
            || {
                ops::matmul_transa(&at, &bt)
                    .expect("shapes agree")
                    .recycle();
            },
            iters,
            reps,
        );
        let baseline_tn_ms = time_ms(
            || {
                let att = ops::transpose_last2(&at).expect("rank 2");
                drop(ops::matmul(&att, &bt).expect("shapes agree"));
            },
            iters,
            reps,
        );
        rows.push(KernelRow {
            name: match name {
                "logits_toys" => "tn_logits_toys",
                "logits_small" => "tn_logits_small",
                "attention_scores" => "tn_attention_scores",
                _ => "tn_logits_backward_flat",
            },
            m,
            k,
            n,
            fused_ms: fused_tn_ms,
            baseline_ms: baseline_tn_ms,
        });
    }

    // Satellite: branch-free dense kernel vs the dedicated zero-skip masked
    // path, on a dense input and on a 75%-sparse one. These are alternative
    // kernels, not a fused-vs-baseline pair, so they carry no CI gate.
    let (m, k, n) = (64, 64, 128);
    let dense_a = Tensor::from_vec(fill(m * k, 53), vec![m, k]);
    let mut sparse_v = fill(m * k, 53);
    for (i, x) in sparse_v.iter_mut().enumerate() {
        if i % 4 != 0 {
            *x = 0.0;
        }
    }
    let sparse_a = Tensor::from_vec(sparse_v, vec![m, k]);
    let b2 = Tensor::from_vec(fill(k * n, 61), vec![k, n]);
    let masked_json = {
        let dense_on_dense = time_ms(
            || drop(ops::matmul2d(&dense_a, &b2).expect("shapes agree")),
            iters,
            reps,
        );
        let masked_on_dense = time_ms(
            || drop(ops::matmul2d_masked(&dense_a, &b2).expect("shapes agree")),
            iters,
            reps,
        );
        let dense_on_sparse = time_ms(
            || drop(ops::matmul2d(&sparse_a, &b2).expect("shapes agree")),
            iters,
            reps,
        );
        let masked_on_sparse = time_ms(
            || drop(ops::matmul2d_masked(&sparse_a, &b2).expect("shapes agree")),
            iters,
            reps,
        );
        format!(
            "{{\"m\": {m}, \"k\": {k}, \"n\": {n}, \
             \"dense_on_dense_ms\": {dense_on_dense:.4}, \
             \"masked_on_dense_ms\": {masked_on_dense:.4}, \
             \"dense_on_sparse_ms\": {dense_on_sparse:.4}, \
             \"masked_on_sparse_ms\": {masked_on_sparse:.4}}}"
        )
    };

    // End-to-end throughput probe: a short SASRec fit on the toys-like
    // workload (training only — the logits matmul dominates the step).
    let seed = 42u64;
    let mut w = workload_by_name(scale, seed, "toys-like");
    w.epochs = match scale {
        Scale::Quick => 2,
        Scale::Full => 5,
    };
    let train = w.split.train_sequences();
    let mut model = build("SASRec", &w, seed);
    let t0 = Instant::now();
    model.fit(&train, &w.train_cfg(seed));
    let train_secs = t0.elapsed().as_secs_f64();
    let seqs_per_s = (train.len() * w.epochs) as f64 / train_secs.max(1e-9);

    let scale_name = match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    let gemm_json: Vec<String> = rows.iter().map(|r| format!("    {}", r.json())).collect();
    let json = format!(
        "{{\n  \"bench\": \"BENCH_3\",\n  \"scale\": \"{scale_name}\",\n  \"gemm\": [\n{}\n  ],\n  \"masked_vs_dense\": {masked_json},\n  \"end_to_end\": {{\"model\": \"SASRec\", \"dataset\": \"toys-like\", \"epochs\": {}, \"seqs_per_s\": {seqs_per_s:.1}}}\n}}\n",
        gemm_json.join(",\n"),
        w.epochs
    );
    std::fs::write("BENCH_3.json", &json).expect("write BENCH_3.json");

    println!("wrote BENCH_3.json");
    for r in &rows {
        println!(
            "  {:<24} ({:>3}x{:>2}x{:>3})  fused {:.3} ms  baseline {:.3} ms  {:.2}x",
            r.name,
            r.m,
            r.k,
            r.n,
            r.fused_ms,
            r.baseline_ms,
            r.speedup()
        );
    }
    println!("  end-to-end SASRec: {seqs_per_s:.0} seqs/s");

    let regressions: Vec<&KernelRow> = rows.iter().filter(|r| r.speedup() < 1.0).collect();
    if !regressions.is_empty() {
        for r in regressions {
            eprintln!(
                "REGRESSION: {} fused {:.3} ms slower than baseline {:.3} ms",
                r.name, r.fused_ms, r.baseline_ms
            );
        }
        std::process::exit(1);
    }
}

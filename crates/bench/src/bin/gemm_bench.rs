//! GEMM kernel microbenchmark (BENCH_8): SIMD vs scalar dispatch on the
//! workload shape classes, the fused NT/TN kernels against the
//! materialize-transpose baseline, quantized-weight GEMM storage/timing,
//! and one end-to-end training-throughput probe.
//!
//! Writes `BENCH_8.json` into the current directory and exits nonzero when
//! any gate fails (the CI bench-smoke gate):
//!
//! * every shape class must show SIMD ≥ 1.0× over scalar;
//! * the geometric mean over the logits shape classes must be ≥ 1.5×;
//! * every fused kernel must beat its materialize-transpose baseline.
//!
//! ```sh
//! cargo run --release -p bench --bin gemm_bench
//! ```
//!
//! Iteration counts scale with `META_SGCL_SCALE` (`quick`/`full`).

use std::time::Instant;

use bench::zoo::build;
use bench::{workload_by_name, Scale};
use tensor::{ops, tuning, QuantMatrix, QuantMode, Tensor};

/// Best-of-`reps` mean milliseconds per call over `iters` calls.
fn time_ms(mut f: impl FnMut(), iters: usize, reps: usize) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e3 / iters as f64);
    }
    best
}

/// Deterministic pseudo-random fill in roughly [-10, 10).
fn fill(len: usize, seed: u64) -> Vec<f32> {
    let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 40) as f32 / (1u64 << 24) as f32) * 20.0 - 10.0
        })
        .collect()
}

/// Workload shape classes: tied-softmax logits at two catalog sizes, an
/// attention-score block, and the flattened shared-B backward shape.
const SHAPES: &[(&str, usize, usize, usize)] = &[
    ("logits_toys", 32, 32, 361),
    ("logits_small", 16, 32, 201),
    ("attention_scores", 40, 20, 20),
    ("logits_backward_flat", 640, 32, 361),
];

/// Pre-runs every kernel on every shape so `tensor::pool` holds each size
/// class before any measured loop starts. Without this, whichever
/// configuration is timed first also pays the pool's first-touch
/// allocations, skewing A-vs-B comparisons by measurement order.
fn warm_pool() {
    for &(_, m, k, n) in SHAPES {
        let a = Tensor::from_vec(fill(m * k, 11), vec![m, k]);
        let b = Tensor::from_vec(fill(n * k, 23), vec![n, k]);
        ops::matmul_transb(&a, &b).expect("shapes agree").recycle();
        let at = Tensor::from_vec(fill(k * m, 31), vec![k, m]);
        let bt = Tensor::from_vec(fill(k * n, 43), vec![k, n]);
        ops::matmul_transa(&at, &bt)
            .expect("shapes agree")
            .recycle();
        let btt = ops::transpose_last2(&b).expect("rank 2");
        ops::matmul(&a, &btt).expect("shapes agree").recycle();
        btt.recycle();
    }
}

struct KernelRow {
    name: String,
    m: usize,
    k: usize,
    n: usize,
    fast_ms: f64,
    slow_ms: f64,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.slow_ms / self.fast_ms
    }

    fn json(&self, fast: &str, slow: &str) -> String {
        format!(
            "{{\"name\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"{fast}_ms\": {:.4}, \"{slow}_ms\": {:.4}, \"speedup\": {:.3}}}",
            self.name,
            self.m,
            self.k,
            self.n,
            self.fast_ms,
            self.slow_ms,
            self.speedup()
        )
    }
}

/// Times the fused NT kernel on one shape under the current dispatch
/// settings.
fn nt_ms(a: &Tensor, b: &Tensor, iters: usize, reps: usize) -> f64 {
    time_ms(
        || {
            ops::matmul_transb(a, b).expect("shapes agree").recycle();
        },
        iters,
        reps,
    )
}

/// Times the fused NT kernel with SIMD on and off, **interleaving** the
/// two configurations rep by rep so ambient load (this is a one-core
/// box) perturbs both sides alike instead of whichever phase it lands
/// on. Returns `(simd_ms, scalar_ms)` as best-of over the reps.
fn nt_simd_pair_ms(a: &Tensor, b: &Tensor, iters: usize, reps: usize) -> (f64, f64) {
    let run = |simd: bool| {
        tuning::set_simd_enabled(simd);
        nt_ms(a, b, iters, 1)
    };
    let (mut simd_ms, mut scalar_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        simd_ms = simd_ms.min(run(true));
        scalar_ms = scalar_ms.min(run(false));
    }
    (simd_ms, scalar_ms)
}

fn main() {
    let scale = Scale::from_env();
    let (iters, reps) = match scale {
        Scale::Quick => (20, 3),
        Scale::Full => (100, 5),
    };

    warm_pool();

    // Tiny shapes run in well under a microsecond; scale their iteration
    // counts up so each timed block is long enough for stable best-of
    // measurements (a noisy sub-microsecond row must not flap a gate).
    let iters_for = |m: usize, k: usize, n: usize| -> usize { iters * (1 + 400_000 / (m * k * n)) };

    // --- SIMD vs scalar on every shape class (the tentpole gate). Both
    // sides run the identical fused NT path; only the dispatch level
    // differs, and FixedOrder ops are bitwise-identical across levels.
    let simd_was = tuning::simd_enabled();
    let mut simd_rows: Vec<KernelRow> = Vec::new();
    for &(name, m, k, n) in SHAPES {
        let a = Tensor::from_vec(fill(m * k, 11), vec![m, k]);
        let b = Tensor::from_vec(fill(n * k, 23), vec![n, k]);
        let it = iters_for(m, k, n);
        let (simd_ms, scalar_ms) = nt_simd_pair_ms(&a, &b, it, reps + 2);
        tuning::set_simd_enabled(simd_was);
        simd_rows.push(KernelRow {
            name: name.to_string(),
            m,
            k,
            n,
            fast_ms: simd_ms,
            slow_ms: scalar_ms,
        });
    }
    let logits_speedups: Vec<f64> = simd_rows
        .iter()
        .filter(|r| r.name.starts_with("logits"))
        .map(KernelRow::speedup)
        .collect();
    let geomean = (logits_speedups.iter().map(|s| s.ln()).sum::<f64>()
        / logits_speedups.len().max(1) as f64)
        .exp();

    // --- fused NT/TN vs materialize-transpose baseline (BENCH_3 lineage).
    let mut fused_rows: Vec<KernelRow> = Vec::new();
    for &(name, m, k, n) in SHAPES {
        let a = Tensor::from_vec(fill(m * k, 11), vec![m, k]);
        let b = Tensor::from_vec(fill(n * k, 23), vec![n, k]);
        let it = iters_for(m, k, n);
        let fused_ms = nt_ms(&a, &b, it, reps);
        let baseline_ms = time_ms(
            || {
                let bt = ops::transpose_last2(&b).expect("rank 2");
                drop(ops::matmul(&a, &bt).expect("shapes agree"));
            },
            it,
            reps,
        );
        fused_rows.push(KernelRow {
            name: name.to_string(),
            m,
            k,
            n,
            fast_ms: fused_ms,
            slow_ms: baseline_ms,
        });

        // TN: A[k,m]ᵀ · B[k,n] — the gradient-side kernel at the same shape.
        let at = Tensor::from_vec(fill(k * m, 31), vec![k, m]);
        let bt = Tensor::from_vec(fill(k * n, 43), vec![k, n]);
        let fused_tn_ms = time_ms(
            || {
                ops::matmul_transa(&at, &bt)
                    .expect("shapes agree")
                    .recycle();
            },
            it,
            reps,
        );
        let baseline_tn_ms = time_ms(
            || {
                let att = ops::transpose_last2(&at).expect("rank 2");
                drop(ops::matmul(&att, &bt).expect("shapes agree"));
            },
            it,
            reps,
        );
        fused_rows.push(KernelRow {
            name: format!("tn_{name}"),
            m,
            k,
            n,
            fast_ms: fused_tn_ms,
            slow_ms: baseline_tn_ms,
        });
    }

    // --- quantized frozen-weight GEMM: resident bytes and NT timing on
    // the serving logits shape (dequantize-in-pack vs plain f32).
    let quant_json = {
        let (m, k, n) = (32usize, 32usize, 361usize);
        let h = Tensor::from_vec(fill(m * k, 71), vec![m, k]);
        let table = Tensor::from_vec(fill(n * k, 73), vec![n, k]);
        let qf32 = QuantMatrix::from_tensor(table.clone(), QuantMode::F32).expect("rank 2");
        let qbf16 = QuantMatrix::from_tensor(table.clone(), QuantMode::Bf16).expect("rank 2");
        let qint8 = QuantMatrix::from_tensor(table, QuantMode::Int8).expect("rank 2");
        let f32_ms = time_ms(
            || {
                ops::matmul_transb_q(&h, &qf32)
                    .expect("shapes agree")
                    .recycle();
            },
            iters,
            reps,
        );
        let bf16_ms = time_ms(
            || {
                ops::matmul_transb_q(&h, &qbf16)
                    .expect("shapes agree")
                    .recycle();
            },
            iters,
            reps,
        );
        format!(
            "{{\"m\": {m}, \"k\": {k}, \"n\": {n}, \
             \"f32_bytes\": {}, \"bf16_bytes\": {}, \"int8_bytes\": {}, \
             \"f32_ms\": {f32_ms:.4}, \"bf16_ms\": {bf16_ms:.4}}}",
            qf32.resident_bytes(),
            qbf16.resident_bytes(),
            qint8.resident_bytes(),
        )
    };

    // Satellite: branch-free dense kernel vs the dedicated zero-skip masked
    // path, on a dense input and on a 75%-sparse one. These are alternative
    // kernels, not a fused-vs-baseline pair, so they carry no CI gate.
    let masked_json = {
        let (m, k, n) = (64usize, 64usize, 128usize);
        let dense_a = Tensor::from_vec(fill(m * k, 53), vec![m, k]);
        let mut sparse_v = fill(m * k, 53);
        for (i, x) in sparse_v.iter_mut().enumerate() {
            if i % 4 != 0 {
                *x = 0.0;
            }
        }
        let sparse_a = Tensor::from_vec(sparse_v, vec![m, k]);
        let b2 = Tensor::from_vec(fill(k * n, 61), vec![k, n]);
        let dense_on_dense = time_ms(
            || drop(ops::matmul2d(&dense_a, &b2).expect("shapes agree")),
            iters,
            reps,
        );
        let masked_on_dense = time_ms(
            || drop(ops::matmul2d_masked(&dense_a, &b2).expect("shapes agree")),
            iters,
            reps,
        );
        let dense_on_sparse = time_ms(
            || drop(ops::matmul2d(&sparse_a, &b2).expect("shapes agree")),
            iters,
            reps,
        );
        let masked_on_sparse = time_ms(
            || drop(ops::matmul2d_masked(&sparse_a, &b2).expect("shapes agree")),
            iters,
            reps,
        );
        format!(
            "{{\"m\": {m}, \"k\": {k}, \"n\": {n}, \
             \"dense_on_dense_ms\": {dense_on_dense:.4}, \
             \"masked_on_dense_ms\": {masked_on_dense:.4}, \
             \"dense_on_sparse_ms\": {dense_on_sparse:.4}, \
             \"masked_on_sparse_ms\": {masked_on_sparse:.4}}}"
        )
    };

    // End-to-end throughput probe: a short SASRec fit on the toys-like
    // workload (training only — the logits matmul dominates the step).
    let seed = 42u64;
    let mut w = workload_by_name(scale, seed, "toys-like");
    w.epochs = match scale {
        Scale::Quick => 2,
        Scale::Full => 5,
    };
    let train = w.split.train_sequences();
    let mut model = build("SASRec", &w, seed);
    let t0 = Instant::now();
    model.fit(&train, &w.train_cfg(seed));
    let train_secs = t0.elapsed().as_secs_f64();
    let seqs_per_s = (train.len() * w.epochs) as f64 / train_secs.max(1e-9);

    let scale_name = match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    const LOGITS_GEOMEAN_GATE: f64 = 1.5;
    let simd_json: Vec<String> = simd_rows
        .iter()
        .map(|r| format!("    {}", r.json("simd", "scalar")))
        .collect();
    let fused_json: Vec<String> = fused_rows
        .iter()
        .map(|r| format!("    {}", r.json("fused", "baseline")))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"BENCH_8\",\n  \"scale\": \"{scale_name}\",\n  \
         \"simd_vs_scalar\": [\n{}\n  ],\n  \
         \"logits_geomean_speedup\": {geomean:.3},\n  \
         \"logits_geomean_gate\": {LOGITS_GEOMEAN_GATE},\n  \
         \"gemm\": [\n{}\n  ],\n  \"quantized_nt\": {quant_json},\n  \
         \"masked_vs_dense\": {masked_json},\n  \
         \"end_to_end\": {{\"model\": \"SASRec\", \"dataset\": \"toys-like\", \
         \"epochs\": {}, \"seqs_per_s\": {seqs_per_s:.1}}}\n}}\n",
        simd_json.join(",\n"),
        fused_json.join(",\n"),
        w.epochs
    );
    std::fs::write("BENCH_8.json", &json).expect("write BENCH_8.json");

    println!("wrote BENCH_8.json");
    for r in &simd_rows {
        println!(
            "  simd  {:<24} ({:>3}x{:>2}x{:>3})  simd {:.3} ms  scalar {:.3} ms  {:.2}x",
            r.name,
            r.m,
            r.k,
            r.n,
            r.fast_ms,
            r.slow_ms,
            r.speedup()
        );
    }
    println!("  logits geomean SIMD speedup: {geomean:.2}x (gate {LOGITS_GEOMEAN_GATE}x)");
    for r in &fused_rows {
        println!(
            "  fused {:<24} ({:>3}x{:>2}x{:>3})  fused {:.3} ms  baseline {:.3} ms  {:.2}x",
            r.name,
            r.m,
            r.k,
            r.n,
            r.fast_ms,
            r.slow_ms,
            r.speedup()
        );
    }
    println!("  end-to-end SASRec: {seqs_per_s:.0} seqs/s");

    let mut failed = false;
    for r in &simd_rows {
        if r.speedup() < 1.0 {
            eprintln!(
                "GATE FAILED: {} SIMD {:.3} ms slower than scalar {:.3} ms",
                r.name, r.fast_ms, r.slow_ms
            );
            failed = true;
        }
    }
    if geomean < LOGITS_GEOMEAN_GATE {
        eprintln!(
            "GATE FAILED: logits geomean SIMD speedup {geomean:.2}x < {LOGITS_GEOMEAN_GATE}x"
        );
        failed = true;
    }
    for r in &fused_rows {
        if r.speedup() < 1.0 {
            eprintln!(
                "REGRESSION: {} fused {:.3} ms slower than baseline {:.3} ms",
                r.name, r.fast_ms, r.slow_ms
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

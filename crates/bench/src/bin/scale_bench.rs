//! Catalog-scale benchmark (BENCH_9): sampled softmax vs the full-catalog
//! objective, and HNSW approximate top-k recall.
//!
//! Three gated measurements, written to `BENCH_9.json` in the current
//! directory (nonzero exit when any gate fails):
//!
//! 1. **Epoch-time gate** — one SASRec training epoch on a synthetic
//!    100 000-item catalog, full softmax vs sampled softmax. The sampled
//!    objective must be at least 5× faster per epoch: this is the claim
//!    that sampling breaks the `O(|items|)` logits wall, measured, not
//!    asserted.
//! 2. **Convergence gate** — on the toys-scale catalog (280 items) where
//!    the full objective is affordable, both objectives train to
//!    completion and sampled HR@10 must stay within a tolerance of full
//!    HR@10 (`sampled >= full - max(0.05, 0.25·full)`), so the speedup is
//!    not bought with ranking quality.
//! 3. **ANN recall curve** — an HNSW index over a frozen model's item
//!    table, recall@10 vs the exact inner-product top-k across
//!    `ef ∈ {8, 16, 32, 64, 128}`. The gate (recall@10 ≥ 0.95 at the
//!    serving default `ef = 64`) is the same bar the CI serve-smoke job
//!    holds a live server to.
//!
//! Geometry scales with `META_SGCL_SCALE` (`quick`/`full`).

#![allow(clippy::expect_used)] // CI smoke binary: panicking with context IS the failure path

use std::time::Instant;

use models::{
    evaluate_valid, NegativeSampler, NetConfig, SasRec, SequentialRecommender, SoftmaxMode,
    TrainConfig,
};
use nn::Freeze;
use recdata::{synth, LeaveOneOut};
use serve::{HnswConfig, HnswIndex};

/// Synthetic catalog big enough that full-softmax logits dominate the
/// step: the paper-scale regime the sampled objective exists for.
const BIG_CATALOG: usize = 100_000;

fn big_catalog_config(num_users: usize) -> synth::SynthConfig {
    synth::SynthConfig {
        name: "scale-100k".into(),
        num_users,
        num_items: BIG_CATALOG,
        num_clusters: 64,
        mean_len: 12.0,
        min_len: 5,
        max_len: 20,
        markov_weight: 0.35,
        pop_weight: 0.15,
        zipf_exponent: 0.6,
        user_interests: 3,
        seed: 42,
    }
}

fn net(num_items: usize, dim: usize, layers: usize) -> NetConfig {
    NetConfig {
        dim,
        layers,
        ..NetConfig::for_items(num_items)
    }
}

/// Wall-clock seconds for `epochs` passes of `fit` under `softmax`.
fn time_fit(train: &[Vec<usize>], num_items: usize, softmax: SoftmaxMode, epochs: usize) -> f64 {
    let mut model = SasRec::new(net(num_items, 32, 1));
    let cfg = TrainConfig {
        epochs,
        softmax,
        ..TrainConfig::default()
    };
    let t0 = Instant::now();
    model.fit(train, &cfg);
    t0.elapsed().as_secs_f64() / epochs as f64
}

fn main() {
    let scale = std::env::var("META_SGCL_SCALE").unwrap_or_else(|_| "quick".into());
    let full_scale = scale == "full";

    // --- 1. epoch time at catalog scale -----------------------------------
    let users = if full_scale { 48 } else { 12 };
    let big = synth::generate(&big_catalog_config(users));
    let train = LeaveOneOut::split(&big).train_sequences();
    let sampled_mode = SoftmaxMode::Sampled {
        negatives: 512,
        sampler: NegativeSampler::Uniform,
    };
    println!("timing full softmax epoch over {BIG_CATALOG} items ({users} users)…");
    let full_epoch_s = time_fit(&train, big.num_items, SoftmaxMode::Full, 1);
    println!("  full: {full_epoch_s:.2}s/epoch; timing sampled (512 negatives)…");
    let sampled_epoch_s = time_fit(&train, big.num_items, sampled_mode, 1);
    let speedup = full_epoch_s / sampled_epoch_s;
    println!("  sampled: {sampled_epoch_s:.2}s/epoch ({speedup:.1}x)");
    const SPEEDUP_GATE: f64 = 5.0;
    let speedup_pass = speedup >= SPEEDUP_GATE;

    // --- 2. convergence at a scale where full softmax is affordable -------
    let toys = synth::generate(&synth::SynthConfig::toys_like(42));
    let split = LeaveOneOut::split(&toys);
    let toys_train = split.train_sequences();
    let epochs = if full_scale { 10 } else { 3 };
    let hr_of = |softmax: SoftmaxMode| -> f64 {
        let mut model = SasRec::new(net(toys.num_items, 32, 2));
        let cfg = TrainConfig {
            epochs,
            softmax,
            ..TrainConfig::default()
        };
        model.fit(&toys_train, &cfg);
        evaluate_valid(&mut model, &split, &[10]).hr(10)
    };
    println!(
        "convergence check on {} items, {epochs} epochs…",
        toys.num_items
    );
    let full_hr = hr_of(SoftmaxMode::Full);
    let sampled_hr = hr_of(SoftmaxMode::Sampled {
        negatives: 128,
        sampler: NegativeSampler::Uniform,
    });
    let hr_tolerance = (0.25 * full_hr).max(0.05);
    let converge_pass = sampled_hr >= full_hr - hr_tolerance;
    println!("  HR@10 full {full_hr:.4} vs sampled {sampled_hr:.4} (tolerance {hr_tolerance:.4})");

    // --- 3. HNSW recall@10 vs beam width ----------------------------------
    let ann_items = if full_scale { 5_000 } else { 2_000 };
    let ann_model = meta_sgcl::MetaSgcl::new(meta_sgcl::MetaSgclConfig::for_items(ann_items));
    let frozen = ann_model.freeze();
    let table = frozen.item_embeddings();
    let dim = table.shape().dim(1);
    let t0 = Instant::now();
    let index = HnswIndex::build(&table, ann_items, &HnswConfig::default());
    let build_s = t0.elapsed().as_secs_f64();
    println!("built HNSW over {ann_items} items (d={dim}) in {build_s:.2}s");

    // Query with real serving queries: last-position hidden states of
    // synthetic histories, the vectors the engine actually searches with.
    let queries: Vec<Vec<f32>> = (0..50u64)
        .map(|u| {
            let history: Vec<usize> = (0..8)
                .map(|i| 1 + ((u as usize * 131 + i * 17) % ann_items))
                .collect();
            frozen
                .query_embedding(&history)
                .expect("non-empty history has a query embedding")
        })
        .collect();
    let exact: Vec<Vec<usize>> = queries
        .iter()
        .map(|q| {
            let mut ranked: Vec<(usize, f32)> = (1..=ann_items)
                .map(|item| {
                    let row = table.row(item);
                    (item, row.iter().zip(q).map(|(a, b)| a * b).sum())
                })
                .collect();
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            ranked.truncate(10);
            ranked.into_iter().map(|(i, _)| i).collect()
        })
        .collect();
    let ef_sweep = [8usize, 16, 32, 64, 128];
    let mut curve = Vec::new();
    for &ef in &ef_sweep {
        let mut hits = 0usize;
        let mut total = 0usize;
        for (q, want) in queries.iter().zip(&exact) {
            let got: Vec<usize> = index
                .search(q, 10, ef)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            assert!(!got.contains(&0), "padding id retrieved at ef={ef}");
            total += want.len();
            hits += want.iter().filter(|i| got.contains(i)).count();
        }
        let recall = hits as f64 / total as f64;
        println!("  ef {ef:>3}: recall@10 {recall:.4}");
        curve.push((ef, recall));
    }
    const RECALL_GATE: f64 = 0.95;
    const DEFAULT_EF: usize = 64;
    let recall_at_default = curve
        .iter()
        .find(|(ef, _)| *ef == DEFAULT_EF)
        .map(|(_, r)| *r)
        .expect("default ef in sweep");
    let recall_pass = recall_at_default >= RECALL_GATE;

    // --- report ------------------------------------------------------------
    let pass = speedup_pass && converge_pass && recall_pass;
    let curve_json: Vec<String> = curve
        .iter()
        .map(|(ef, r)| format!("{{\"ef\": {ef}, \"recall_at_10\": {r:.4}}}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"BENCH_9\",\n  \"scale\": \"{scale}\",\n  \
         \"sampled_softmax\": {{\"num_items\": {BIG_CATALOG}, \"users\": {users}, \
         \"negatives\": 512, \"full_epoch_s\": {full_epoch_s:.3}, \
         \"sampled_epoch_s\": {sampled_epoch_s:.3}, \"speedup\": {speedup:.2}, \
         \"gate\": {SPEEDUP_GATE:.1}, \"pass\": {speedup_pass}}},\n  \
         \"convergence\": {{\"num_items\": {}, \"epochs\": {epochs}, \
         \"hr10_full\": {full_hr:.4}, \"hr10_sampled\": {sampled_hr:.4}, \
         \"tolerance\": {hr_tolerance:.4}, \"pass\": {converge_pass}}},\n  \
         \"ann\": {{\"num_items\": {ann_items}, \"dim\": {dim}, \"build_s\": {build_s:.3}, \
         \"queries\": {}, \"curve\": [{}], \
         \"default_ef\": {DEFAULT_EF}, \"recall_gate\": {RECALL_GATE}, \"pass\": {recall_pass}}},\n  \
         \"pass\": {pass}\n}}\n",
        toys.num_items,
        queries.len(),
        curve_json.join(", "),
    );
    std::fs::write("BENCH_9.json", &json).expect("write BENCH_9.json");
    print!("{json}");
    if pass {
        std::process::exit(0);
    }
    if !speedup_pass {
        eprintln!("GATE FAILED: sampled-softmax speedup {speedup:.2}x < {SPEEDUP_GATE}x");
    }
    if !converge_pass {
        eprintln!(
            "GATE FAILED: sampled HR@10 {sampled_hr:.4} below full {full_hr:.4} - {hr_tolerance:.4}"
        );
    }
    if !recall_pass {
        eprintln!(
            "GATE FAILED: recall@10 {recall_at_default:.4} < {RECALL_GATE} at ef {DEFAULT_EF}"
        );
    }
    std::process::exit(1);
}

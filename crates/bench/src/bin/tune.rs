//! Hyper-parameter tuning driver used while calibrating the reproduction
//! (not part of the paper's experiment set). Trains a configurable grid on
//! one workload and prints NDCG@10.
//!
//! ```sh
//! cargo run --release -p bench --bin tune [-- <dataset>]
//! ```

use bench::zoo::build;
use bench::{run_model, workload_by_name, Scale};
use meta_sgcl::{MetaSgcl, TrainStrategy};
use models::DuoRec;

fn main() {
    let ds = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "toys-like".into());
    let seed = 42u64;
    let w = workload_by_name(Scale::from_env(), seed, &ds);
    println!("dataset {} — {}", w.data.name, w.data.stats());

    // Reference points.
    {
        let name = "SASRec";
        let mut m = build(name, &w, seed);
        let r = run_model(m.as_mut(), &w, seed);
        println!(
            "{name:<24} NDCG@10 {:.4}  HR@10 {:.4}",
            r.ndcg(10),
            r.hr(10)
        );
    }

    // DuoRec isolation.
    {
        let (lu, ls) = (0.01f32, 0.005f32);
        let mut m = DuoRec::new(w.net(seed));
        m.lambda_unsup = lu;
        m.lambda_sup = ls;
        let r = run_model(&mut m, &w, seed);
        println!(
            "DuoRec unsup={lu} sup={ls}  NDCG@10 {:.4}  HR@10 {:.4}",
            r.ndcg(10),
            r.hr(10)
        );
    }

    // ContrastVAE isolation.
    use models::{Augmentation, ContrastVae, Vsan};
    {
        let mut m = Vsan::new(w.net(seed), w.beta);
        let r = run_model(&mut m, &w, seed);
        println!("VSAN  NDCG@10 {:.4}  HR@10 {:.4}", r.ndcg(10), r.hr(10));
    }
    for (aug, alpha, rec2) in [
        (Augmentation::Model, 0.0f32, false),
        (Augmentation::Model, 0.05, true),
        (Augmentation::Data, 0.05, true),
    ] {
        let mut m = ContrastVae::new(w.net(seed), alpha, w.beta);
        m.augmentation = aug;
        m.second_reconstruction = rec2;
        let r = run_model(&mut m, &w, seed);
        println!(
            "ContrastVAE {aug:?} α={alpha} rec2={rec2}  NDCG@10 {:.4}  HR@10 {:.4}",
            r.ndcg(10),
            r.hr(10)
        );
    }

    // Meta-SGCL alpha tuning.
    use meta_sgcl::Ablation;
    for (label, alpha, beta, ablation) in [
        ("full a.05 b.2", 0.05f32, 0.2f32, Ablation::Full),
        ("full a.05 b.3", 0.05, 0.3, Ablation::Full),
        ("full a.05 b.4", 0.05, 0.4, Ablation::Full),
        ("nocl b.2", 0.0, 0.2, Ablation::NoCl),
    ] {
        let mut cfg = w.meta_cfg(seed);
        cfg.alpha = alpha;
        cfg.beta = beta;
        cfg.ablation = ablation;
        cfg.strategy = TrainStrategy::MetaTwoStep;
        let mut m = MetaSgcl::new(cfg);
        let r = run_model(&mut m, &w, seed);
        println!(
            "Meta-SGCL {label}  NDCG@10 {:.4}  HR@10 {:.4}",
            r.ndcg(10),
            r.hr(10)
        );
    }
}

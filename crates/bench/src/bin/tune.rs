//! Hyper-parameter tuning driver used while calibrating the reproduction
//! (not part of the paper's experiment set). Trains a configurable grid on
//! one workload and prints NDCG@10.
//!
//! ```sh
//! cargo run --release -p bench --bin tune [-- <dataset>]
//! cargo run --release -p bench --bin tune -- --sweep-kernels
//! ```
//!
//! `--sweep-kernels` sweeps the [`tensor::tuning`] GEMM cutoffs in-process
//! (the same knobs the `META_SGCL_GEMM_*` env vars set) and prints the
//! fused-kernel timing at each point, for picking per-machine defaults.
//! It then sweeps the SIMD dispatch knobs (`META_SGCL_SIMD`,
//! `META_SGCL_SIMD_MIN_N`) over the packed, small-m, and elementwise
//! paths, so the scalar/SIMD crossover can be read off per machine.

use std::time::Instant;

use bench::zoo::build;
use bench::{run_model, workload_by_name, Scale};
use meta_sgcl::{MetaSgcl, TrainStrategy};
use models::DuoRec;
use tensor::{ops, tuning, Tensor};

/// Mean milliseconds per call, best of 3 runs of `iters` calls.
fn time_ms(mut f: impl FnMut(), iters: usize) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e3 / iters as f64);
    }
    best
}

/// Sweeps the GEMM parallel-dispatch cutoffs over a grid and times the
/// fused NT kernel on the logits and flattened-backward shapes at each
/// point. Restores the default knob values before returning.
fn sweep_kernels() {
    let shapes = [(32usize, 32usize, 361usize), (640, 32, 361)];
    let tensors: Vec<(Tensor, Tensor)> = shapes
        .iter()
        .map(|&(m, k, n)| {
            let a = Tensor::from_vec(
                (0..m * k).map(|i| (i % 13) as f32 - 6.0).collect(),
                vec![m, k],
            );
            let b = Tensor::from_vec(
                (0..n * k).map(|i| (i % 17) as f32 - 8.0).collect(),
                vec![n, k],
            );
            (a, b)
        })
        .collect();
    let (rows0, work0) = (tuning::gemm_par_rows(), tuning::gemm_par_row_work());
    println!("gemm_par_rows gemm_par_row_work  32x32x361(ms)  640x32x361(ms)");
    for rows in [8usize, 16, 32, 64, usize::MAX] {
        for work in [4096usize, 16384, 65536] {
            tuning::set_gemm_par_rows(rows);
            tuning::set_gemm_par_row_work(work);
            let ms: Vec<f64> = tensors
                .iter()
                .map(|(a, b)| {
                    time_ms(
                        || {
                            ops::matmul_transb(a, b).expect("shapes agree").recycle();
                        },
                        20,
                    )
                })
                .collect();
            let rows_s = if rows == usize::MAX {
                "serial".into()
            } else {
                rows.to_string()
            };
            println!("{rows_s:>13} {work:>17}  {:>12.4}  {:>13.4}", ms[0], ms[1]);
        }
    }
    tuning::set_gemm_par_rows(rows0);
    tuning::set_gemm_par_row_work(work0);

    // SIMD dispatch sweep: the kill switch crossed with the gemm_row /
    // elementwise width threshold. The packed shapes show the stripe
    // kernel (threshold-exempt: its width is fixed); the m=2 shape runs
    // the small-m row kernel and `add` the elementwise path, both of
    // which sit behind `simd_min_n`.
    let (simd0, min0) = (tuning::simd_enabled(), tuning::simd_min_n());
    let (a2, b2) = {
        let a = Tensor::from_vec(
            (0..2 * 32).map(|i| (i % 13) as f32 - 6.0).collect(),
            vec![2, 32],
        );
        let b = Tensor::from_vec(
            (0..361 * 32).map(|i| (i % 17) as f32 - 8.0).collect(),
            vec![361, 32],
        );
        (a, b)
    };
    let ew = Tensor::from_vec((0..65536).map(|i| (i % 29) as f32).collect(), vec![65536]);
    println!();
    println!("simd  simd_min_n  2x32x361(ms)  32x32x361(ms)  640x32x361(ms)  add64k(ms)");
    for on in [false, true] {
        for min_n in [1usize, 8, 64, 512] {
            tuning::set_simd_enabled(on);
            tuning::set_simd_min_n(min_n);
            let small_ms = time_ms(
                || {
                    ops::matmul_transb(&a2, &b2)
                        .expect("shapes agree")
                        .recycle();
                },
                20,
            );
            let packed: Vec<f64> = tensors
                .iter()
                .map(|(a, b)| {
                    time_ms(
                        || {
                            ops::matmul_transb(a, b).expect("shapes agree").recycle();
                        },
                        20,
                    )
                })
                .collect();
            let add_ms = time_ms(
                || {
                    ops::add(&ew, &ew).expect("same shape").recycle();
                },
                20,
            );
            println!(
                "{:>4} {min_n:>11}  {small_ms:>12.4}  {:>13.4}  {:>14.4}  {add_ms:>10.4}",
                if on { "on" } else { "off" },
                packed[0],
                packed[1],
            );
        }
    }
    tuning::set_simd_enabled(simd0);
    tuning::set_simd_min_n(min0);
}

fn main() {
    let ds = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "toys-like".into());
    if ds == "--sweep-kernels" {
        sweep_kernels();
        return;
    }
    let seed = 42u64;
    let w = workload_by_name(Scale::from_env(), seed, &ds);
    println!("dataset {} — {}", w.data.name, w.data.stats());

    // Reference points.
    {
        let name = "SASRec";
        let mut m = build(name, &w, seed);
        let r = run_model(m.as_mut(), &w, seed);
        println!(
            "{name:<24} NDCG@10 {:.4}  HR@10 {:.4}",
            r.ndcg(10),
            r.hr(10)
        );
    }

    // DuoRec isolation.
    {
        let (lu, ls) = (0.01f32, 0.005f32);
        let mut m = DuoRec::new(w.net(seed));
        m.lambda_unsup = lu;
        m.lambda_sup = ls;
        let r = run_model(&mut m, &w, seed);
        println!(
            "DuoRec unsup={lu} sup={ls}  NDCG@10 {:.4}  HR@10 {:.4}",
            r.ndcg(10),
            r.hr(10)
        );
    }

    // ContrastVAE isolation.
    use models::{Augmentation, ContrastVae, Vsan};
    {
        let mut m = Vsan::new(w.net(seed), w.beta);
        let r = run_model(&mut m, &w, seed);
        println!("VSAN  NDCG@10 {:.4}  HR@10 {:.4}", r.ndcg(10), r.hr(10));
    }
    for (aug, alpha, rec2) in [
        (Augmentation::Model, 0.0f32, false),
        (Augmentation::Model, 0.05, true),
        (Augmentation::Data, 0.05, true),
    ] {
        let mut m = ContrastVae::new(w.net(seed), alpha, w.beta);
        m.augmentation = aug;
        m.second_reconstruction = rec2;
        let r = run_model(&mut m, &w, seed);
        println!(
            "ContrastVAE {aug:?} α={alpha} rec2={rec2}  NDCG@10 {:.4}  HR@10 {:.4}",
            r.ndcg(10),
            r.hr(10)
        );
    }

    // Meta-SGCL alpha tuning.
    use meta_sgcl::Ablation;
    for (label, alpha, beta, ablation) in [
        ("full a.05 b.2", 0.05f32, 0.2f32, Ablation::Full),
        ("full a.05 b.3", 0.05, 0.3, Ablation::Full),
        ("full a.05 b.4", 0.05, 0.4, Ablation::Full),
        ("nocl b.2", 0.0, 0.2, Ablation::NoCl),
    ] {
        let mut cfg = w.meta_cfg(seed);
        cfg.alpha = alpha;
        cfg.beta = beta;
        cfg.ablation = ablation;
        cfg.strategy = TrainStrategy::MetaTwoStep;
        let mut m = MetaSgcl::new(cfg);
        let r = run_model(&mut m, &w, seed);
        println!(
            "Meta-SGCL {label}  NDCG@10 {:.4}  HR@10 {:.4}",
            r.ndcg(10),
            r.hr(10)
        );
    }
}

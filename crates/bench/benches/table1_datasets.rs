//! Table I — dataset statistics.
//!
//! Prints users/items/interactions/avg-length/sparsity for the three
//! synthetic workloads next to the paper's numbers for the real datasets,
//! so the preserved *relative* structure (sparsity and length ordering) is
//! visible.

use bench::{print_table, workloads, Scale};

fn main() {
    let scale = Scale::from_env();
    let ws = workloads(scale, 42);

    // Paper's Table I for the real datasets.
    let paper: [(&str, usize, usize, usize, f64, f64); 3] = [
        ("Clothing", 39_387, 23_033, 278_677, 7.1, 99.97),
        ("Toys", 19_412, 11_924, 167_597, 8.6, 99.93),
        ("ML-1M", 6_040, 3_416, 999_611, 165.5, 95.16),
    ];

    let header: Vec<String> = [
        "dataset",
        "users",
        "items",
        "interactions",
        "avg.length",
        "sparsity",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for (w, p) in ws.iter().zip(paper.iter()) {
        let s = w.data.stats();
        rows.push(vec![
            format!("{} (paper: {})", w.data.name, p.0),
            format!("{} ({})", s.users, p.1),
            format!("{} ({})", s.items, p.2),
            format!("{} ({})", s.interactions, p.3),
            format!("{:.1} ({:.1})", s.avg_length, p.4),
            format!("{:.2}% ({:.2}%)", s.sparsity * 100.0, p.5),
        ]);
    }
    print_table(
        "Table I — dataset statistics (measured vs paper)",
        &header,
        &rows,
    );

    // Shape assertions: orderings from the paper must hold.
    let stats: Vec<_> = ws.iter().map(|w| w.data.stats()).collect();
    assert!(
        stats[0].sparsity > stats[1].sparsity,
        "clothing sparser than toys"
    );
    assert!(
        stats[1].sparsity > stats[2].sparsity,
        "toys sparser than ml1m"
    );
    assert!(
        stats[0].avg_length < stats[1].avg_length,
        "clothing shorter than toys"
    );
    assert!(
        stats[1].avg_length < stats[2].avg_length,
        "toys shorter than ml1m"
    );
    println!("shape check: sparsity and avg-length orderings match the paper ✓");
}

//! Extension experiment (the conclusion's "exploring different view
//! generators" future-work direction): hold the Meta-SGCL objective fixed
//! and swap only the second-view generator —
//!
//! * `MetaSigma` — the paper's learned `Enc_σ'` (generative augmentation);
//! * `Dropout`   — DuoRec-style model augmentation;
//! * `DataAugmentation` — CL4SRec/ContrastVAE-style crop/mask/reorder.
//!
//! The paper's Figure 1 argument predicts the generative views win because
//! they preserve the sequence semantics the hand-crafted views disturb.

use bench::{fmt_cell, print_table, run_model, workload_by_name, Scale};
use meta_sgcl::{MetaSgcl, SecondView};

fn main() {
    let scale = Scale::from_env();
    let seed = 42u64;

    let header: Vec<String> = [
        "dataset",
        "view generator",
        "HR@5",
        "HR@10",
        "NDCG@5",
        "NDCG@10",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for name in ["clothing-like", "toys-like"] {
        let w = workload_by_name(scale, seed, name);
        let mut results = Vec::new();
        for view in [
            SecondView::MetaSigma,
            SecondView::Dropout,
            SecondView::DataAugmentation,
        ] {
            let mut cfg = w.meta_cfg(seed);
            cfg.second_view = view;
            let mut m = MetaSgcl::new(cfg);
            let r = run_model(&mut m, &w, seed);
            rows.push(vec![
                name.to_string(),
                format!("{view:?}"),
                fmt_cell(r.hr(5), None),
                fmt_cell(r.hr(10), None),
                fmt_cell(r.ndcg(5), None),
                fmt_cell(r.ndcg(10), None),
            ]);
            results.push((view, r.ndcg(10)));
        }
        let best = results
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|(v, _)| *v)
            .unwrap();
        println!(
            "{name}: best view generator = {best:?} \
             (paper's Fig. 1 argument predicts MetaSigma)"
        );
    }
    print_table(
        "Extension — second-view generator comparison inside Meta-SGCL",
        &header,
        &rows,
    );
}

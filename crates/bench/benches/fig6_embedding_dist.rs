//! Figure 6 — item-embedding distribution, SASRec vs Meta-SGCL (RQ6).
//!
//! The paper shows t-SNE scatter plots: SASRec's item embeddings collapse
//! into a narrow cone while Meta-SGCL's are spread more uniformly. We
//! measure that claim directly (mean pairwise cosine, Wang–Isola
//! uniformity, spectral effective rank) and dump a 2-D PCA projection as
//! CSV under `target/fig6/` for plotting.

use bench::{print_table, run_model, workloads, Scale};
use meta_sgcl::MetaSgcl;
use metrics::embedding::{analyze, pca_project_2d};
use models::{NetConfig, SasRec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use tensor::Tensor;

fn strip_padding_row(table: &Tensor) -> Tensor {
    // Row 0 is the padding item; exclude it from the analysis.
    let (n, d) = (table.dim(0), table.dim(1));
    let mut data = Vec::with_capacity((n - 1) * d);
    for i in 1..n {
        data.extend_from_slice(table.row(i));
    }
    Tensor::from_vec(data, vec![n - 1, d])
}

fn dump_csv(name: &str, dataset: &str, proj: &[(f64, f64)], counts: &[usize]) {
    let dir = std::path::Path::new("target/fig6");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{dataset}_{name}.csv"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = writeln!(f, "x,y,frequency");
        for (i, (x, y)) in proj.iter().enumerate() {
            let c = counts.get(i + 1).copied().unwrap_or(0);
            let _ = writeln!(f, "{x:.6},{y:.6},{c}");
        }
        eprintln!("  wrote {}", path.display());
    }
}

fn main() {
    let scale = Scale::from_env();
    let seed = 42u64;
    let ws = workloads(scale, seed);
    let mut rng = StdRng::seed_from_u64(seed);

    let header: Vec<String> = [
        "dataset",
        "model",
        "mean cosine",
        "uniformity",
        "effective rank",
        "top-1 var share",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    let mut shape_ok = true;

    for w in &ws {
        let counts = w.data.item_counts();
        // SASRec.
        let mut sasrec = SasRec::new(NetConfig {
            max_len: w.max_len,
            seed,
            ..NetConfig::for_items(w.data.num_items)
        });
        run_model(&mut sasrec, w, seed);
        let sas_table = strip_padding_row(&sasrec.backbone().item_table().borrow().value);
        let sas = analyze(&sas_table, 4000, &mut rng);
        dump_csv("sasrec", &w.data.name, &pca_project_2d(&sas_table), &counts);

        // Meta-SGCL.
        let mut meta = MetaSgcl::new(w.meta_cfg(seed));
        run_model(&mut meta, w, seed);
        let meta_table = strip_padding_row(&meta.item_table().borrow().value);
        let met = analyze(&meta_table, 4000, &mut rng);
        dump_csv(
            "metasgcl",
            &w.data.name,
            &pca_project_2d(&meta_table),
            &counts,
        );

        rows.push(vec![
            w.data.name.clone(),
            "SASRec".into(),
            format!("{:.4}", sas.mean_cosine),
            format!("{:.4}", sas.uniformity),
            format!("{:.2}", sas.effective_rank),
            format!("{:.3}", sas.top1_variance_ratio),
        ]);
        rows.push(vec![
            w.data.name.clone(),
            "Meta-SGCL".into(),
            format!("{:.4}", met.mean_cosine),
            format!("{:.4}", met.uniformity),
            format!("{:.2}", met.effective_rank),
            format!("{:.3}", met.top1_variance_ratio),
        ]);

        // Paper shape: Meta-SGCL's embedding distribution is more uniform
        // (lower uniformity loss, higher effective rank, lower mean cosine).
        let more_uniform =
            met.uniformity <= sas.uniformity || met.effective_rank >= sas.effective_rank;
        if !more_uniform {
            shape_ok = false;
        }
        println!(
            "{}: Meta-SGCL {} more uniform than SASRec (Δuniformity {:+.3}, Δeff-rank {:+.2})",
            w.data.name,
            if more_uniform { "is" } else { "is NOT" },
            met.uniformity - sas.uniformity,
            met.effective_rank - sas.effective_rank,
        );
    }
    print_table(
        "Figure 6 — item-embedding distribution statistics",
        &header,
        &rows,
    );
    println!(
        "{} Meta-SGCL produces a more uniform embedding distribution (paper's Fig. 6 claim)",
        if shape_ok { "✓" } else { "✗" }
    );
}

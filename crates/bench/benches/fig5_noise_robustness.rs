//! Figure 5 — robustness to noisy interactions (RQ5): inject a proportion
//! of random items into the *training* sequences and measure the final
//! performance of SASRec, DuoRec, and Meta-SGCL on clean test targets.
//!
//! Paper shapes: noise degrades every model; the self-supervised models
//! degrade more gracefully; Meta-SGCL stays on top across ratios.

use bench::zoo::build;
use bench::{fmt_cell, print_table, workload_by_name, Scale};
use models::evaluate_test;
use rand::rngs::StdRng;
use rand::SeedableRng;
use recdata::inject_noise;

fn main() {
    let scale = Scale::from_env();
    let seed = 42u64;
    let ratios = [0.0f64, 0.1, 0.2, 0.3, 0.4, 0.5];
    let model_names = ["SASRec", "DuoRec", "Meta-SGCL"];

    let header: Vec<String> = std::iter::once("model".to_string())
        .chain(ratios.iter().map(|r| format!("{}%", (r * 100.0) as u32)))
        .collect();

    for ds in ["toys-like", "clothing-like"] {
        let w = workload_by_name(scale, seed, ds);
        let clean_train = w.split.train_sequences();
        let mut rows = Vec::new();
        let mut curves: Vec<Vec<f64>> = Vec::new();
        for name in model_names {
            let mut row = vec![name.to_string()];
            let mut curve = Vec::new();
            for &ratio in &ratios {
                let mut rng = StdRng::seed_from_u64(seed ^ noise_seed(ratio));
                let noisy = inject_noise(&clean_train, ratio, w.data.num_items, &mut rng);
                let mut model = build(name, &w, seed);
                model.fit(&noisy, &w.train_cfg(seed));
                let r = evaluate_test(model.as_mut(), &w.split, &[5, 10]);
                eprintln!("  [{ds}] {name} noise={ratio:.1} NDCG@10={:.4}", r.ndcg(10));
                curve.push(r.ndcg(10));
                row.push(fmt_cell(r.ndcg(10), None));
            }
            curves.push(curve);
            rows.push(row);
        }
        print_table(
            &format!("Figure 5 — NDCG@10 vs training-noise ratio ({ds})"),
            &header,
            &rows,
        );
        // Shape checks.
        let meta = &curves[2];
        let sas = &curves[0];
        let meta_wins = meta.iter().zip(sas.iter()).filter(|(m, s)| m >= s).count();
        println!(
            "{ds}: Meta-SGCL ≥ SASRec at {meta_wins}/{} noise levels; \
             Meta-SGCL@10% = {:.4} vs SASRec clean = {:.4} (paper: noisy Meta-SGCL can \
             beat clean baselines)",
            ratios.len(),
            meta[1],
            sas[0],
        );
    }
}

/// Deterministic per-ratio seed component (keeps f64 out of the seed API).
fn noise_seed(ratio: f64) -> u64 {
    (ratio * 1000.0) as u64
}

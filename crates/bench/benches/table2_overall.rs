//! Table II — overall performance comparison: 11 models × 3 datasets ×
//! HR@{5,10} / NDCG@{5,10}.
//!
//! The absolute numbers differ from the paper (synthetic data, reduced
//! scale); what should reproduce is the *shape*: traditional < sequential <
//! contrastive, and Meta-SGCL best overall. A summary at the end checks the
//! key orderings.

use bench::zoo::{all_model_names, build};
use bench::{paper, print_table, run_model, workloads, Scale};
use metrics::EvalReport;

fn cell(r: &EvalReport) -> (f64, f64, f64, f64) {
    (r.hr(5), r.hr(10), r.ndcg(5), r.ndcg(10))
}

fn main() {
    let scale = Scale::from_env();
    let seed = 42u64;
    let ws = workloads(scale, seed);
    let names = all_model_names();

    let mut measured: Vec<Vec<(f64, f64, f64, f64)>> = Vec::new();
    for (di, w) in ws.iter().enumerate() {
        eprintln!("=== dataset {} ===", w.data.name);
        let mut row = Vec::new();
        for name in &names {
            let mut model = build(name, w, seed);
            let report = run_model(model.as_mut(), w, seed);
            row.push(cell(&report));
        }
        measured.push(row);
        let _ = di;
    }

    for (di, w) in ws.iter().enumerate() {
        let header: Vec<String> = std::iter::once("metric".to_string())
            .chain(names.iter().map(|s| s.to_string()))
            .collect();
        let metric_names = ["HR@5", "HR@10", "NDCG@5", "NDCG@10"];
        let mut rows = Vec::new();
        for (mi, metric) in metric_names.iter().enumerate() {
            let mut row = vec![metric.to_string()];
            for (ni, name) in names.iter().enumerate() {
                let m = measured[di][ni];
                let v = [m.0, m.1, m.2, m.3][mi];
                let p = paper::table2_ref(di, name).map(|c| [c.0, c.1, c.2, c.3][mi]);
                row.push(bench::fmt_cell(v, p));
            }
            rows.push(row);
        }
        print_table(
            &format!(
                "Table II — {} (measured vs paper {})",
                w.data.name,
                paper::TABLE2_DATASETS[di]
            ),
            &header,
            &rows,
        );
    }

    // Shape checks (averaged NDCG@10 across datasets).
    let avg = |model: &str| -> f64 {
        let mi = names.iter().position(|n| n == &model).unwrap();
        measured.iter().map(|d| d[mi].3).sum::<f64>() / measured.len() as f64
    };
    println!("\n### shape checks (avg NDCG@10 across datasets)\n");
    let pop = avg("Pop");
    let bpr = avg("BPR-MF");
    let sas = avg("SASRec");
    let duo = avg("DuoRec");
    let meta = avg("Meta-SGCL");
    for (name, v) in [
        ("Pop", pop),
        ("BPR-MF", bpr),
        ("GRU4Rec", avg("GRU4Rec")),
        ("Caser", avg("Caser")),
        ("SASRec", sas),
        ("BERT4Rec", avg("BERT4Rec")),
        ("VSAN", avg("VSAN")),
        ("ACVAE", avg("ACVAE")),
        ("DuoRec", duo),
        ("ContrastVAE", avg("ContrastVAE")),
        ("Meta-SGCL", meta),
    ] {
        println!("{name:>12}: {v:.4}");
    }
    let mut ok = true;
    let mut check = |label: &str, cond: bool| {
        println!("{} {label}", if cond { "✓" } else { "✗" });
        ok &= cond;
    };
    check("Pop is the weakest family (Pop < SASRec)", pop < sas);
    check("non-sequential BPR-MF < attention (SASRec)", bpr < sas);
    check("contrastive DuoRec ≥ plain SASRec", duo >= sas * 0.95);
    check("Meta-SGCL beats SASRec", meta > sas);
    check("Meta-SGCL is best overall", meta >= duo && meta > sas);
    if !ok {
        eprintln!("WARNING: some shape checks failed at this scale/seed");
    }
}

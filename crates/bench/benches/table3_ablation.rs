//! Table III — ablation study (RQ3): −clkl / −cl / −kl / full on all three
//! datasets.
//!
//! Following the paper, the `−clkl` variant *is* SASRec ("our model
//! degenerates into a simple SASRec"); `−cl` keeps only the KL module,
//! `−kl` keeps only the contrastive module.

use bench::zoo::build;
use bench::{fmt_cell, paper, print_table, run_model, workloads, Scale};
use meta_sgcl::{Ablation, MetaSgcl};
use metrics::EvalReport;

fn run_variant(w: &bench::Workload, seed: u64, ablation: Option<Ablation>) -> EvalReport {
    match ablation {
        None => {
            // −clkl = SASRec.
            let mut m = build("SASRec", w, seed);
            run_model(m.as_mut(), w, seed)
        }
        Some(ab) => {
            let mut cfg = w.meta_cfg(seed);
            cfg.ablation = ab;
            let mut m = MetaSgcl::new(cfg);
            run_model(&mut m, w, seed)
        }
    }
}

fn main() {
    let scale = Scale::from_env();
    let seed = 42u64;
    let ws = workloads(scale, seed);
    let variants: [(&str, Option<Ablation>); 4] = [
        ("-clkl", None),
        ("-cl", Some(Ablation::NoCl)),
        ("-kl", Some(Ablation::NoKl)),
        ("Meta-SGCL", Some(Ablation::Full)),
    ];

    let header: Vec<String> = std::iter::once("dataset/metric".to_string())
        .chain(variants.iter().map(|(n, _)| n.to_string()))
        .collect();
    let mut rows = Vec::new();
    let mut full_beats_clkl = true;

    for (di, w) in ws.iter().enumerate() {
        eprintln!("=== dataset {} ===", w.data.name);
        let reports: Vec<EvalReport> = variants
            .iter()
            .map(|(_, ab)| run_variant(w, seed, *ab))
            .collect();
        let (_, refs) = paper::TABLE3[di];
        for (mi, metric) in ["HR@5", "HR@10", "NDCG@5", "NDCG@10"].iter().enumerate() {
            let mut row = vec![format!("{} {metric}", w.data.name)];
            for (vi, r) in reports.iter().enumerate() {
                let v = [r.hr(5), r.hr(10), r.ndcg(5), r.ndcg(10)][mi];
                let p = [refs[vi].0, refs[vi].1, refs[vi].2, refs[vi].3][mi];
                row.push(fmt_cell(v, Some(p)));
            }
            rows.push(row);
        }
        if reports[3].ndcg(10) <= reports[0].ndcg(10) {
            full_beats_clkl = false;
        }
    }
    print_table(
        "Table III — Meta-SGCL ablation (measured vs paper)",
        &header,
        &rows,
    );
    println!(
        "{} full model beats the -clkl (SASRec) variant on NDCG@10 for every dataset",
        if full_beats_clkl { "✓" } else { "✗" }
    );
}

//! Figure 3 — meta-optimized two-step training vs joint learning, on all
//! three datasets (RQ2).
//!
//! The paper's claim: the two-step strategy beats joint learning on every
//! dataset because it adapts the view generator `Enc_σ'` to the downstream
//! contrastive task instead of letting it drift with the joint gradient.

use bench::{fmt_cell, print_table, run_model, workloads, Scale};
use meta_sgcl::{MetaSgcl, TrainStrategy};

fn main() {
    let scale = Scale::from_env();
    let seed = 42u64;
    let ws = workloads(scale, seed);

    let header: Vec<String> = ["dataset", "strategy", "HR@5", "HR@10", "NDCG@5", "NDCG@10"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    let mut wins = 0usize;
    let mut cells = 0usize;
    for w in &ws {
        let mut per_strategy = Vec::new();
        for strategy in [TrainStrategy::Joint, TrainStrategy::MetaTwoStep] {
            let mut cfg = w.meta_cfg(seed);
            cfg.strategy = strategy;
            let mut model = MetaSgcl::new(cfg);
            let report = run_model(&mut model, w, seed);
            rows.push(vec![
                w.data.name.clone(),
                format!("{strategy:?}"),
                fmt_cell(report.hr(5), None),
                fmt_cell(report.hr(10), None),
                fmt_cell(report.ndcg(5), None),
                fmt_cell(report.ndcg(10), None),
            ]);
            per_strategy.push(report);
        }
        let (joint, meta) = (&per_strategy[0], &per_strategy[1]);
        for k in [5usize, 10] {
            cells += 2;
            if meta.hr(k) >= joint.hr(k) {
                wins += 1;
            }
            if meta.ndcg(k) >= joint.ndcg(k) {
                wins += 1;
            }
        }
    }
    print_table(
        "Figure 3 — joint learning vs meta-optimized two-step",
        &header,
        &rows,
    );
    println!(
        "meta-optimized wins or ties {wins}/{cells} metric cells \
         (paper: meta better on all datasets)"
    );
}

//! Criterion micro-benchmarks of the computational kernels behind the
//! complexity analysis in Section IV-F: self-attention (O(n²d)),
//! feed-forward (O(nd²)), matmul, VAE sampling, InfoNCE, and one full
//! Meta-SGCL training step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use autograd::Graph;
use meta_sgcl::{MetaSgcl, MetaSgclConfig};
use models::cl::{info_nce, Similarity};
use models::{NetConfig, SequentialRecommender, TrainConfig};
use nn::{causal_mask, MultiHeadSelfAttention};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::{init, ops};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = StdRng::seed_from_u64(0);
    for &n in &[32usize, 64, 128] {
        let a = init::randn(&mut rng, vec![n, n], 0.0, 1.0);
        let b = init::randn(&mut rng, vec![n, n], 0.0, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| ops::matmul(black_box(&a), black_box(&b)).unwrap())
        });
    }
    group.finish();
}

fn bench_attention_forward(c: &mut Criterion) {
    // O(n²·d): sequence length is the dominant axis (paper Sec. IV-F-1).
    let mut group = c.benchmark_group("attention_forward");
    let mut rng = StdRng::seed_from_u64(0);
    let d = 32;
    let mha = MultiHeadSelfAttention::new(&mut rng, "mha", d, 2, 0.0);
    for &n in &[10usize, 20, 50] {
        let x = init::randn(&mut rng, vec![8, n, d], 0.0, 1.0);
        let mask = causal_mask(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| {
                let g = Graph::new();
                let xv = g.constant(x.clone());
                let mut r = StdRng::seed_from_u64(1);
                black_box(mha.forward(&g, &xv, Some(&mask), &mut r, false).value())
            })
        });
    }
    group.finish();
}

fn bench_infonce(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let z1 = init::randn(&mut rng, vec![64, 32], 0.0, 1.0);
    let z2 = init::randn(&mut rng, vec![64, 32], 0.0, 1.0);
    c.bench_function("info_nce_b64_d32", |b| {
        b.iter(|| {
            let g = Graph::new();
            let a = g.constant(z1.clone());
            let p = g.constant(z2.clone());
            black_box(info_nce(&a, &p, 1.0, Similarity::Dot).item())
        })
    });
}

fn bench_train_step(c: &mut Criterion) {
    // One full meta-optimized training epoch over a tiny corpus.
    let train: Vec<Vec<usize>> = (0..64)
        .map(|u| (0..12).map(|t| 1 + (u + t) % 50_usize).collect())
        .collect();
    c.bench_function("meta_sgcl_epoch_64seq", |b| {
        b.iter(|| {
            let mut m = MetaSgcl::new(MetaSgclConfig {
                net: NetConfig {
                    max_len: 12,
                    dim: 16,
                    layers: 1,
                    ..NetConfig::for_items(50)
                },
                ..MetaSgclConfig::for_items(50)
            });
            m.fit(
                &train,
                &TrainConfig {
                    epochs: 1,
                    batch_size: 32,
                    ..Default::default()
                },
            );
            black_box(m.history().epochs.len())
        })
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_matmul, bench_attention_forward, bench_infonce, bench_train_step
}
criterion_main!(kernels);

//! Table VII — dot product vs cosine similarity in the contrastive loss,
//! on Clothing and Toys (the paper finds dot product best).

use bench::{fmt_cell, print_table, run_model, workload_by_name, Scale};
use meta_sgcl::MetaSgcl;
use models::Similarity;

fn main() {
    let scale = Scale::from_env();
    let seed = 42u64;

    let header: Vec<String> = [
        "dataset",
        "similarity",
        "HR@5",
        "HR@10",
        "NDCG@5",
        "NDCG@10",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for name in ["clothing-like", "toys-like"] {
        let w = workload_by_name(scale, seed, name);
        let mut per_sim = Vec::new();
        for sim in [Similarity::Dot, Similarity::Cosine] {
            let mut cfg = w.meta_cfg(seed);
            cfg.similarity = sim;
            let mut m = MetaSgcl::new(cfg);
            let r = run_model(&mut m, &w, seed);
            rows.push(vec![
                name.to_string(),
                format!("{sim:?}"),
                fmt_cell(r.hr(5), None),
                fmt_cell(r.hr(10), None),
                fmt_cell(r.ndcg(5), None),
                fmt_cell(r.ndcg(10), None),
            ]);
            per_sim.push(r);
        }
        println!(
            "{name}: dot {} cosine on NDCG@10 ({:.4} vs {:.4}; paper: dot wins)",
            if per_sim[0].ndcg(10) >= per_sim[1].ndcg(10) {
                "≥"
            } else {
                "<"
            },
            per_sim[0].ndcg(10),
            per_sim[1].ndcg(10),
        );
    }
    print_table(
        "Table VII — similarity function in the CL term",
        &header,
        &rows,
    );
}

//! Figure 4 — hyper-parameter sensitivity (RQ4): the contrastive weight α
//! (4a/4b), the KL weight β (4c/4d), and the embedding dimension d (4e/4f)
//! on the two Amazon-style datasets.
//!
//! Paper shapes to reproduce: performance deteriorates once α grows past a
//! small threshold; β has an interior optimum in 0.1–0.5; d improves then
//! saturates/overfits.

use bench::{fmt_cell, print_table, run_model, workload_by_name, Scale};
use meta_sgcl::MetaSgcl;

fn main() {
    let scale = Scale::from_env();
    let seed = 42u64;
    let datasets = ["clothing-like", "toys-like"];

    // -- Fig. 4(a,b): alpha sweep ------------------------------------------
    let alphas = [0.01f32, 0.03, 0.1, 0.3, 1.0];
    let header: Vec<String> = std::iter::once("dataset".to_string())
        .chain(alphas.iter().map(|a| format!("α={a}")))
        .collect();
    let mut rows = Vec::new();
    for name in datasets {
        let w = workload_by_name(scale, seed, name);
        let mut row = vec![format!("{name} NDCG@10")];
        let mut series = Vec::new();
        for &alpha in &alphas {
            let mut cfg = w.meta_cfg(seed);
            cfg.alpha = alpha;
            let mut m = MetaSgcl::new(cfg);
            let r = run_model(&mut m, &w, seed);
            series.push(r.ndcg(10));
            row.push(fmt_cell(r.ndcg(10), None));
        }
        rows.push(row);
        let best = series.iter().cloned().fold(f64::MIN, f64::max);
        let last = *series.last().unwrap();
        println!(
            "{} α-shape: best {:.4} at small α, α=1.0 gives {:.4} ({})",
            name,
            best,
            last,
            if last <= best {
                "deteriorates as in the paper ✓"
            } else {
                "✗"
            }
        );
    }
    print_table("Figure 4(a,b) — contrastive weight α", &header, &rows);

    // -- Fig. 4(c,d): beta sweep -------------------------------------------
    let betas = [0.1f32, 0.2, 0.3, 0.4, 0.5];
    let header: Vec<String> = std::iter::once("dataset".to_string())
        .chain(betas.iter().map(|b| format!("β={b}")))
        .collect();
    let mut rows = Vec::new();
    for name in datasets {
        let w = workload_by_name(scale, seed, name);
        let mut row = vec![format!("{name} NDCG@10")];
        for &beta in &betas {
            let mut cfg = w.meta_cfg(seed);
            cfg.beta = beta;
            let mut m = MetaSgcl::new(cfg);
            let r = run_model(&mut m, &w, seed);
            row.push(fmt_cell(r.ndcg(10), None));
        }
        rows.push(row);
    }
    print_table(
        "Figure 4(c,d) — KL weight β (paper best: 0.3 Clothing, 0.2 Toys)",
        &header,
        &rows,
    );

    // -- Fig. 4(e,f): embedding dimension sweep -----------------------------
    // Paper sweeps 32..512 at full scale; reproduction sweeps 8..64.
    let dims = [8usize, 16, 32, 64];
    let header: Vec<String> = std::iter::once("dataset".to_string())
        .chain(dims.iter().map(|d| format!("d={d}")))
        .collect();
    let mut rows = Vec::new();
    for name in datasets {
        let w = workload_by_name(scale, seed, name);
        let mut row = vec![format!("{name} NDCG@10")];
        let mut series = Vec::new();
        for &d in &dims {
            let mut cfg = w.meta_cfg(seed);
            cfg.net.dim = d;
            let mut m = MetaSgcl::new(cfg);
            let r = run_model(&mut m, &w, seed);
            series.push(r.ndcg(10));
            row.push(fmt_cell(r.ndcg(10), None));
        }
        rows.push(row);
        println!(
            "{} d-shape: d=8 {:.4} vs best {:.4} (higher d helps then saturates)",
            name,
            series[0],
            series.iter().cloned().fold(f64::MIN, f64::max)
        );
    }
    print_table("Figure 4(e,f) — embedding dimension d", &header, &rows);
}

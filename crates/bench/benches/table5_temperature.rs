//! Table V — influence of the InfoNCE temperature τ on Clothing and Toys.
//!
//! Paper shape: extreme τ (0.05 or 5) hurts; the sweet spot sits in
//! 0.1–1.0 (best 1.0 on Toys).

use bench::{fmt_cell, paper, print_table, run_model, workload_by_name, Scale};
use meta_sgcl::MetaSgcl;

fn main() {
    let scale = Scale::from_env();
    let seed = 42u64;
    let taus = [0.05f32, 0.1, 0.5, 1.0, 2.0, 5.0];

    let header: Vec<String> = ["dataset", "τ", "HR@5", "HR@10", "NDCG@5", "NDCG@10"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for name in ["clothing-like", "toys-like"] {
        let w = workload_by_name(scale, seed, name);
        let mut series = Vec::new();
        for &tau in &taus {
            let mut cfg = w.meta_cfg(seed);
            cfg.tau = tau;
            let mut m = MetaSgcl::new(cfg);
            let r = run_model(&mut m, &w, seed);
            series.push(r.ndcg(10));
            let pc = if name == "toys-like" {
                paper::TABLE5_TOYS
                    .iter()
                    .find(|(pt, _)| (*pt - tau).abs() < 1e-6)
                    .map(|(_, c)| *c)
            } else {
                None
            };
            rows.push(vec![
                name.to_string(),
                format!("{tau}"),
                fmt_cell(r.hr(5), pc.map(|c| c.0)),
                fmt_cell(r.hr(10), pc.map(|c| c.1)),
                fmt_cell(r.ndcg(5), pc.map(|c| c.2)),
                fmt_cell(r.ndcg(10), pc.map(|c| c.3)),
            ]);
        }
        let best_idx = series
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        println!(
            "{name}: best τ = {} (paper suggests tuning τ in 0.1–1.0)",
            taus[best_idx]
        );
    }
    print_table(
        "Table V — temperature τ (paper refs shown for Toys)",
        &header,
        &rows,
    );
}

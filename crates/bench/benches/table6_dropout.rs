//! Table VI — influence of the dropout rate on Clothing and Toys.
//!
//! Paper shape: dropout 0 underfits the regularization benefit; a moderate
//! rate (0.2) is best; larger rates decay.

use bench::{fmt_cell, paper, print_table, run_model, workload_by_name, Scale};
use meta_sgcl::MetaSgcl;

fn main() {
    let scale = Scale::from_env();
    let seed = 42u64;
    let rates = [0.0f32, 0.1, 0.2, 0.3, 0.4];

    let header: Vec<String> = ["dataset", "dropout", "HR@5", "HR@10", "NDCG@5", "NDCG@10"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for name in ["clothing-like", "toys-like"] {
        let w = workload_by_name(scale, seed, name);
        for &p in &rates {
            let mut cfg = w.meta_cfg(seed);
            cfg.net.dropout = p;
            let mut m = MetaSgcl::new(cfg);
            let r = run_model(&mut m, &w, seed);
            let pc = if name == "toys-like" {
                paper::TABLE6_TOYS
                    .iter()
                    .find(|(pp, _)| (*pp - p).abs() < 1e-6)
                    .map(|(_, c)| *c)
            } else {
                None
            };
            rows.push(vec![
                name.to_string(),
                format!("{p}"),
                fmt_cell(r.hr(5), pc.map(|c| c.0)),
                fmt_cell(r.hr(10), pc.map(|c| c.1)),
                fmt_cell(r.ndcg(5), pc.map(|c| c.2)),
                fmt_cell(r.ndcg(10), pc.map(|c| c.3)),
            ]);
        }
    }
    print_table(
        "Table VI — dropout rate (paper refs shown for Toys)",
        &header,
        &rows,
    );
    println!("paper shape: rises then falls with increasing dropout; 0.2 best");
}

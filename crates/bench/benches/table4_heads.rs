//! Table IV — influence of the number of self-attention heads `h` on the
//! Clothing and Toys datasets (paper best: h = 2, with h = 1 competitive
//! on Clothing NDCG).

use bench::{fmt_cell, paper, print_table, run_model, workload_by_name, Scale};
use meta_sgcl::MetaSgcl;

fn main() {
    let scale = Scale::from_env();
    let seed = 42u64;
    let heads = [1usize, 2, 4, 8];

    let header: Vec<String> = ["dataset", "h", "HR@5", "HR@10", "NDCG@5", "NDCG@10"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for name in ["clothing-like", "toys-like"] {
        let w = workload_by_name(scale, seed, name);
        for &h in &heads {
            let mut cfg = w.meta_cfg(seed);
            cfg.net.heads = h;
            // dim must stay divisible by heads; NetConfig default 32 is.
            assert_eq!(cfg.net.dim % h, 0);
            let mut m = MetaSgcl::new(cfg);
            let r = run_model(&mut m, &w, seed);
            let paper_cell = if name == "toys-like" {
                paper::TABLE4_TOYS
                    .iter()
                    .find(|(ph, _)| *ph == h)
                    .map(|(_, c)| *c)
            } else {
                None
            };
            rows.push(vec![
                name.to_string(),
                h.to_string(),
                fmt_cell(r.hr(5), paper_cell.map(|c| c.0)),
                fmt_cell(r.hr(10), paper_cell.map(|c| c.1)),
                fmt_cell(r.ndcg(5), paper_cell.map(|c| c.2)),
                fmt_cell(r.ndcg(10), paper_cell.map(|c| c.3)),
            ]);
        }
    }
    print_table(
        "Table IV — number of self-attention heads (paper refs shown for Toys)",
        &header,
        &rows,
    );
    println!("paper shape: best around h=2; too many heads do not help");
}

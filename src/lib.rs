//! Umbrella crate for the Meta-SGCL reproduction.
//!
//! Re-exports every workspace crate under one roof so examples, integration
//! tests, and downstream users can depend on a single package:
//!
//! * [`tensor`] — dense f32 tensors.
//! * [`autograd`] — reverse-mode automatic differentiation.
//! * [`nn`] — layers (attention, transformer, GRU, …).
//! * [`optim`] — Adam/SGD, schedules, KL annealing.
//! * [`recdata`] — datasets, splits, batching, augmentation.
//! * [`metrics`] — HR/NDCG/MRR and embedding analytics.
//! * [`models`] — the ten baselines from the paper's Table II.
//! * [`meta_sgcl`] — the paper's model (also re-exported at the root).
//! * [`analysis`] — the static graph auditor (`msgc check`).
//! * [`telemetry`] — metrics registry, tracing spans, health detectors.
//! * [`serve`] — tape-free inference engine and `msgc serve` front end.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use analysis;
pub use autograd;
pub use meta_sgcl;
pub use metrics;
pub use models;
pub use nn;
pub use optim;
pub use recdata;
pub use serve;
pub use telemetry;
pub use tensor;

pub use meta_sgcl::{Ablation, MetaSgcl, MetaSgclConfig, TrainStrategy};
pub use models::{evaluate_test, evaluate_valid, SequentialRecommender, TrainConfig};

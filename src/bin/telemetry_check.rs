//! `telemetry_check` — JSONL schema validator for telemetry streams.
//!
//! ```text
//! telemetry_check metrics.jsonl trace.jsonl
//! ```
//!
//! Validates every line of each file against the documented event schema
//! (DESIGN.md §10) via [`telemetry::schema::validate_stream`], prints
//! per-kind event counts, and exits non-zero on the first malformed line —
//! the CI `telemetry-smoke` job runs it over freshly produced streams.

use std::process::ExitCode;

use meta_sgcl_repro::telemetry::schema::validate_stream;

fn check_file(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let counts = validate_stream(&text).map_err(|e| format!("{path}: {e}"))?;
    let total: usize = counts.iter().map(|(_, n)| n).sum();
    println!("{path}: {total} event(s) OK");
    for (kind, n) in &counts {
        println!("  {kind:<12} {n}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: telemetry_check FILE.jsonl [FILE.jsonl ...]");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &files {
        if let Err(e) = check_file(path) {
            eprintln!("error: {e}");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

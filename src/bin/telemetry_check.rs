//! `telemetry_check` — JSONL schema validator for telemetry streams.
//!
//! ```text
//! telemetry_check metrics.jsonl trace.jsonl
//! telemetry_check --admin-snapshot snapshot.jsonl
//! telemetry_check --bench10 BENCH_10.json
//! ```
//!
//! The default mode validates every line of each file against the
//! documented event schema (DESIGN.md §10/§15) via
//! [`telemetry::schema::validate_stream`], prints per-kind event counts,
//! and exits non-zero on the first malformed line — the CI
//! `telemetry-smoke` job runs it over freshly produced streams.
//!
//! `--admin-snapshot FILE` validates a serve admin snapshot line
//! (name-sorted metrics + SLO states); `--bench10 FILE` validates a
//! `BENCH_10.json` observability-bench report. Both are used by the CI
//! `obs-smoke` job. Modes may be mixed freely on one command line; each
//! mode flag applies to the files after it.

use std::process::ExitCode;

use meta_sgcl_repro::telemetry::schema::{
    validate_admin_snapshot, validate_bench10, validate_stream,
};

fn check_stream(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let counts = validate_stream(&text).map_err(|e| format!("{path}: {e}"))?;
    let total: usize = counts.iter().map(|(_, n)| n).sum();
    println!("{path}: {total} event(s) OK");
    for (kind, n) in &counts {
        println!("  {kind:<12} {n}");
    }
    Ok(())
}

fn check_admin_snapshot(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let line = text
        .lines()
        .find(|l| !l.trim().is_empty())
        .ok_or_else(|| format!("{path}: empty"))?;
    let (metrics, slos) = validate_admin_snapshot(line).map_err(|e| format!("{path}: {e}"))?;
    println!("{path}: admin snapshot OK ({metrics} metrics, {slos} SLO states)");
    Ok(())
}

fn check_bench10(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    validate_bench10(&text).map_err(|e| format!("{path}: {e}"))?;
    println!("{path}: BENCH_10 report OK");
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprintln!(
            "usage: telemetry_check [--admin-snapshot | --bench10 | --stream] FILE [FILE ...]"
        );
        return ExitCode::from(2);
    }
    let mut mode = "--stream";
    let mut checked = 0usize;
    let mut failed = false;
    for arg in &argv {
        if let "--stream" | "--admin-snapshot" | "--bench10" = arg.as_str() {
            mode = arg;
            continue;
        }
        checked += 1;
        let result = match mode {
            "--admin-snapshot" => check_admin_snapshot(arg),
            "--bench10" => check_bench10(arg),
            _ => check_stream(arg),
        };
        if let Err(e) = result {
            eprintln!("error: {e}");
            failed = true;
        }
    }
    if checked == 0 {
        eprintln!("error: no files given");
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

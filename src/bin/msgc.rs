//! `msgc` — command-line interface for the Meta-SGCL reproduction.
//!
//! ```text
//! msgc generate --preset toys --seed 42 --out data.csv
//! msgc stats    --data data.csv
//! msgc train    --data data.csv --epochs 20 --out model.msgc \
//!               --metrics-out metrics.jsonl --trace-out trace.jsonl
//! msgc evaluate --data data.csv --model model.msgc
//! msgc recommend --data data.csv --model model.msgc --user 3 --k 10
//! msgc serve    --data data.csv --model model.msgc --addr 127.0.0.1:7878
//! msgc top      127.0.0.1:7878
//! msgc report   metrics.jsonl --trace trace.jsonl
//! ```
//!
//! `--data` accepts either a CSV of `user,item,rating,timestamp` rows or
//! one of the built-in synthetic presets via `synth:<preset>:<seed>`
//! (e.g. `synth:toys:42`).

use std::collections::HashMap;
use std::io::Write;
use std::process::ExitCode;

use meta_sgcl_repro::meta_sgcl::{MetaSgcl, MetaSgclConfig};
use meta_sgcl_repro::models::{
    evaluate_test, evaluate_valid, recommend_top_k, NetConfig, TrainConfig,
};
use meta_sgcl_repro::recdata::io::{load_interactions_csv, CsvOptions};
use meta_sgcl_repro::recdata::{synth, Dataset, LeaveOneOut};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  msgc generate --preset <clothing|toys|ml1m> [--seed N] --out FILE\n  \
         msgc stats --data SPEC\n  \
         msgc train --data SPEC [--epochs N] [--dim N] [--max-len N] [--alpha F] [--beta F] \
         [--joint] [--threads N] [--shard-size N] [--sanitize] \
         [--save-every N] [--keep-last K] [--ckpt-dir DIR] [--resume PATH] [--max-steps N] \
         [--metrics-out FILE] [--trace-out FILE] [--strict-health] \
         [--sampled-softmax N] [--sampler uniform|log-uniform] \
         --out MODEL\n  \
         msgc evaluate --data SPEC --model MODEL [--dim N] [--max-len N]\n  \
         msgc recommend --data SPEC --model MODEL --user N [--k N] [--dim N] [--max-len N]\n  \
         msgc serve --data SPEC --model MODEL [--addr HOST:PORT] [--mode full|incremental] \
         [--batch-max N] [--batch-wait-us N] [--quantize none|bf16|int8] \
         [--ann] [--ann-ef N] [--topk exact|ann] [--dim N] [--max-len N] \
         [--trace-out FILE] [--trace-sample N] [--slo-p99-ms F] [--min-hit-rate F] \
         [--min-recall F] [--canary-every-s N] [--canary-probes N]\n  \
         msgc top ADDR [--interval-ms N] [--iters N]\n  \
         msgc check [--model NAME | --all] [--cost] [--determinism] [--frozen-parity] \
         [--audit-json FILE] [--inject-fault <shape|freeze|reassoc|cost|parity>]\n  \
         msgc report METRICS.jsonl [--trace TRACE.jsonl]\n\n\
         SPEC = path to user,item,rating,timestamp CSV, or synth:<preset>:<seed>"
    );
    ExitCode::from(2)
}

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &[
    "joint",
    "sanitize",
    "all",
    "strict-health",
    "cost",
    "determinism",
    "frozen-parity",
    "ann",
];

/// Flags that require a value.
const VALUE_FLAGS: &[&str] = &[
    "preset",
    "seed",
    "out",
    "data",
    "epochs",
    "dim",
    "max-len",
    "alpha",
    "beta",
    "model",
    "user",
    "k",
    "threads",
    "shard-size",
    "inject-fault",
    "save-every",
    "keep-last",
    "ckpt-dir",
    "resume",
    "max-steps",
    "metrics-out",
    "trace-out",
    "trace",
    "addr",
    "mode",
    "batch-max",
    "batch-wait-us",
    "quantize",
    "audit-json",
    "sampled-softmax",
    "sampler",
    "ann-ef",
    "topk",
    "trace-sample",
    "slo-p99-ms",
    "min-hit-rate",
    "min-recall",
    "canary-every-s",
    "canary-probes",
    "interval-ms",
    "iters",
];

#[derive(Debug)]
struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument '{a}' (flags start with --)"));
            };
            if BOOL_FLAGS.contains(&name) {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            } else if VALUE_FLAGS.contains(&name) {
                let Some(value) = argv.get(i + 1) else {
                    return Err(format!("missing value for --{name}"));
                };
                flags.insert(name.to_string(), value.clone());
                i += 2;
            } else {
                return Err(format!("unknown flag --{name}"));
            }
        }
        Ok(Args { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{name}: {v}")),
        }
    }
}

fn load_data(spec: &str) -> Result<Dataset, String> {
    if let Some(rest) = spec.strip_prefix("synth:") {
        let mut parts = rest.split(':');
        let preset = parts.next().unwrap_or("toys");
        let seed: u64 = parts
            .next()
            .unwrap_or("42")
            .parse()
            .map_err(|_| format!("bad seed in data spec {spec}"))?;
        let cfg = match preset {
            "clothing" => synth::SynthConfig::clothing_like(seed),
            "ml1m" => synth::SynthConfig::ml1m_like(seed),
            "toys" => synth::SynthConfig::toys_like(seed),
            other => return Err(format!("unknown preset {other}")),
        };
        Ok(synth::generate(&cfg))
    } else {
        load_interactions_csv(spec, &CsvOptions::default()).map_err(|e| e.to_string())
    }
}

fn build_model(data: &Dataset, args: &Args) -> Result<MetaSgcl, String> {
    let dim: usize = args.get_or("dim", 32)?;
    let max_len: usize = args.get_or("max-len", 20)?;
    let alpha: f32 = args.get_or("alpha", 0.05)?;
    let beta: f32 = args.get_or("beta", 0.2)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let mut cfg = MetaSgclConfig {
        net: NetConfig {
            dim,
            max_len,
            seed,
            ..NetConfig::for_items(data.num_items)
        },
        alpha,
        beta,
        ..MetaSgclConfig::for_items(data.num_items)
    };
    if args.get("joint").is_some() {
        cfg.strategy = meta_sgcl_repro::meta_sgcl::TrainStrategy::Joint;
    }
    Ok(MetaSgcl::new(cfg))
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let preset = args.get("preset").ok_or("--preset required")?;
    let seed: u64 = args.get_or("seed", 42)?;
    let out = args.get("out").ok_or("--out required")?;
    let data = load_data(&format!("synth:{preset}:{seed}"))?;
    let mut f = std::fs::File::create(out).map_err(|e| e.to_string())?;
    for (u, seq) in data.sequences.iter().enumerate() {
        for (t, item) in seq.iter().enumerate() {
            writeln!(f, "u{u},i{item},5,{t}").map_err(|e| e.to_string())?;
        }
    }
    println!("wrote {} interactions to {out}", data.num_interactions());
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let data = load_data(args.get("data").ok_or("--data required")?)?;
    println!("dataset {}: {}", data.name, data.stats());
    let split = LeaveOneOut::split(&data);
    println!("evaluable users (≥3 interactions): {}", split.num_users());
    Ok(())
}

/// Prints checkpoint commits and resume events as training progresses.
struct CkptReporter;

impl meta_sgcl_repro::meta_sgcl::TrainObserver for CkptReporter {
    fn on_checkpoint(&mut self, path: &std::path::Path, step: u64) {
        println!("checkpoint: {} (step {step})", path.display());
    }

    fn on_resume(&mut self, path: &std::path::Path, epoch: usize, batch: usize, step: u64) {
        println!(
            "resuming from {} at epoch {epoch}, batch {batch}, step {step}",
            path.display()
        );
    }
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let data = load_data(args.get("data").ok_or("--data required")?)?;
    let out = args.get("out").ok_or("--out required")?;
    let epochs: usize = args.get_or("epochs", 20)?;
    let threads: usize = args.get_or("threads", 1)?;
    let shard_size: usize = args.get_or("shard-size", TrainConfig::default().shard_size)?;
    if threads == 0 || shard_size == 0 {
        return Err("--threads and --shard-size must be at least 1".into());
    }
    let save_every: u64 = args.get_or("save-every", 0)?;
    let keep_last: usize = args.get_or("keep-last", 0)?;
    let max_steps: u64 = args.get_or("max-steps", 0)?;
    // Periodic checkpoints default to a sibling directory of the model file.
    let ckpt_dir = match (args.get("ckpt-dir"), save_every) {
        (Some(dir), _) => Some(dir.to_string()),
        (None, 0) => None,
        (None, _) => Some(format!("{out}.ckpts")),
    };
    // Sampled-softmax objective: `--sampled-softmax N` draws N negative
    // candidates per training shard (0 = full-catalog cross-entropy).
    let negatives: usize = args.get_or("sampled-softmax", 0)?;
    let sampler = match args.get("sampler") {
        None => meta_sgcl_repro::models::NegativeSampler::Uniform,
        Some(s) => meta_sgcl_repro::models::NegativeSampler::parse(s)
            .ok_or_else(|| format!("invalid --sampler {s} (uniform|log-uniform)"))?,
    };
    let softmax = if negatives > 0 {
        meta_sgcl_repro::models::SoftmaxMode::Sampled { negatives, sampler }
    } else {
        meta_sgcl_repro::models::SoftmaxMode::Full
    };
    let split = LeaveOneOut::split(&data);
    let mut model = build_model(&data, args)?;
    let tc = TrainConfig {
        epochs,
        softmax,
        max_len: model.config().net.max_len,
        verbose: true,
        threads,
        shard_size,
        sanitize: args.get("sanitize").is_some(),
        save_every,
        keep_last,
        ckpt_dir,
        resume: args.get("resume").map(str::to_string),
        max_steps,
        metrics_out: args.get("metrics-out").map(str::to_string),
        trace_out: args.get("trace-out").map(str::to_string),
        strict_health: args.get("strict-health").is_some(),
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    model
        .train_model_observed(&split.train_sequences(), &tc, &mut CkptReporter)
        .map_err(|e| format!("training failed: {e}"))?;
    println!(
        "trained {} epochs in {:.1?} on {} thread(s)",
        epochs,
        t0.elapsed(),
        threads
    );
    let valid = evaluate_valid(&mut model, &split, &[5, 10]);
    println!("validation: {valid}");
    model.save(out).map_err(|e| e.to_string())?;
    println!("saved model to {out}");
    Ok(())
}

fn cmd_evaluate(args: &Args) -> Result<(), String> {
    let data = load_data(args.get("data").ok_or("--data required")?)?;
    let split = LeaveOneOut::split(&data);
    let mut model = build_model(&data, args)?;
    model
        .load(args.get("model").ok_or("--model required")?)
        .map_err(|e| e.to_string())?;
    let report = evaluate_test(&mut model, &split, &[5, 10]);
    println!("test: {report}");
    Ok(())
}

fn cmd_recommend(args: &Args) -> Result<(), String> {
    let data = load_data(args.get("data").ok_or("--data required")?)?;
    let split = LeaveOneOut::split(&data);
    let user: usize = args.get_or("user", 0)?;
    let k: usize = args.get_or("k", 10)?;
    if user >= split.num_users() {
        return Err(format!(
            "user {user} out of range ({} users)",
            split.num_users()
        ));
    }
    let mut model = build_model(&data, args)?;
    model
        .load(args.get("model").ok_or("--model required")?)
        .map_err(|e| e.to_string())?;
    let history = split.users[user].test_input();
    println!("user {user} history (most recent last): {history:?}");
    for (rank, (item, score)) in recommend_top_k(&mut model, user, &history, k, true)
        .iter()
        .enumerate()
    {
        println!("  {}. item {item} (score {score:.4})", rank + 1);
    }
    Ok(())
}

/// `msgc serve`: load a trained checkpoint, freeze it into the tape-free
/// inference engine, and serve line-delimited JSON scoring requests over
/// TCP with micro-batching across connections.
///
/// Observability is always on: every request feeds the `serve.latency_us`
/// sketch and the sliding-window SLO monitors, and the socket answers
/// read-only `{"op":"admin"}` queries (snapshot / health / prom — see
/// `msgc top`). `--trace-out FILE` additionally emits span trees and flat
/// `req` events for a deterministic 1-in-`--trace-sample` of requests.
/// With `--ann`, a background canary replays `--canary-probes` synthetic
/// histories every `--canary-every-s` seconds through both the index and
/// the exact ranking, publishing live recall@10 (gated when `--min-recall`
/// is set).
fn cmd_serve(args: &Args) -> Result<(), String> {
    use meta_sgcl_repro::nn::Freeze;
    use meta_sgcl_repro::serve::{
        canary_probes, canary_recall, quantize_gated, server, Batcher, Engine, HnswConfig,
        HnswIndex, Mode, ObsConfig, ServeObs, SloBudgets, TopK,
    };
    use meta_sgcl_repro::tensor::QuantMode;
    use std::sync::Arc;
    use std::time::Duration;

    let data = load_data(args.get("data").ok_or("--data required")?)?;
    let mut model = build_model(&data, args)?;
    model
        .load(args.get("model").ok_or("--model required")?)
        .map_err(|e| e.to_string())?;
    let mode = match args.get("mode").unwrap_or("full") {
        "full" => Mode::Full,
        "incremental" => Mode::Incremental,
        other => return Err(format!("unknown --mode {other} (full|incremental)")),
    };
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878");
    let batch_max: usize = args.get_or("batch-max", 16)?;
    let batch_wait_us: u64 = args.get_or("batch-wait-us", 200)?;
    if batch_max == 0 {
        return Err("--batch-max must be at least 1".into());
    }
    let quant = QuantMode::parse(args.get("quantize").unwrap_or("none"))
        .ok_or("unknown --quantize (none|bf16|int8)")?;
    let default_topk = match args.get("topk").unwrap_or("exact") {
        "exact" => TopK::Exact,
        "ann" => TopK::Ann,
        other => return Err(format!("unknown --topk {other} (exact|ann)")),
    };
    // `--ann` builds the index; a default of `ann` implies it.
    let want_ann = args.get("ann").is_some() || default_topk == TopK::Ann;
    let ann_ef: usize = args.get_or("ann-ef", 64)?;

    meta_sgcl_repro::telemetry::set_enabled(true);
    let mut frozen = model.freeze();
    if quant != QuantMode::F32 {
        // Gate ranking parity on real histories from the served dataset.
        let probes: Vec<Vec<usize>> = data
            .sequences
            .iter()
            .filter(|s| s.len() >= 2)
            .take(16)
            .cloned()
            .collect();
        let report = quantize_gated(&mut frozen, quant, &probes)?;
        println!("{report}");
    }

    // Deterministic cold-start ranking: dataset popularity (empty
    // histories would otherwise rank an all-zero catalog).
    let mut counts = vec![0u64; data.num_items + 1];
    for seq in &data.sequences {
        for &item in seq {
            if let Some(c) = counts.get_mut(item) {
                *c += 1;
            }
        }
    }
    let mut engine = Engine::new(frozen, mode)
        .with_popularity(&counts)
        .with_default_topk(default_topk);

    if want_ann {
        let table = engine.model().item_embeddings();
        let ann_cfg = HnswConfig {
            ef_search: ann_ef,
            ..HnswConfig::default()
        };
        // The index persists alongside the checkpoint; a sidecar built
        // from different embedding bytes or parameters is rebuilt.
        let sidecar =
            std::path::PathBuf::from(format!("{}.hnsw", args.get("model").unwrap_or("model")));
        let index = match HnswIndex::load(&sidecar, &table, data.num_items, &ann_cfg) {
            Some(index) => {
                println!("loaded ANN index from {}", sidecar.display());
                index
            }
            None => {
                let t0 = std::time::Instant::now();
                let index = HnswIndex::build(&table, data.num_items, &ann_cfg);
                match index.save(&sidecar) {
                    Ok(()) => println!(
                        "built ANN index over {} items in {:.1?} (saved to {})",
                        data.num_items,
                        t0.elapsed(),
                        sidecar.display()
                    ),
                    Err(e) => println!(
                        "built ANN index over {} items in {:.1?} (sidecar not saved: {e})",
                        data.num_items,
                        t0.elapsed()
                    ),
                }
                index
            }
        };
        engine = engine.with_ann(index);
    }
    let engine = Arc::new(engine);
    // One synthetic pass through every scoring path so the first real
    // request doesn't pay pool-population and dispatch-probe cold costs.
    engine.warm_up();
    let batcher = Arc::new(Batcher::new(
        Arc::clone(&engine),
        batch_max,
        Duration::from_micros(batch_wait_us),
    ));

    // Observability: tracing is opt-in (--trace-out), metering and the
    // admin endpoint are always on.
    let tracer = match args.get("trace-out") {
        None => None,
        Some(path) => Some(Arc::new(
            meta_sgcl_repro::telemetry::trace::Tracer::to_file(path)
                .map_err(|e| format!("--trace-out {path}: {e}"))?,
        )),
    };
    let obs = ServeObs::new(ObsConfig {
        tracer,
        sample_every: args.get_or("trace-sample", 64)?,
        budgets: SloBudgets {
            p99_ms: args.get_or("slo-p99-ms", 50.0)?,
            min_hit_rate: match args.get("min-hit-rate") {
                None => None,
                Some(_) => Some(args.get_or("min-hit-rate", 0.0)?),
            },
            min_recall: match args.get("min-recall") {
                None => None,
                Some(_) => Some(args.get_or("min-recall", 0.0)?),
            },
            ..SloBudgets::default()
        },
        ..ObsConfig::default()
    });

    // Background recall canary: replay deterministic probes through the
    // ANN index and the exact ranking, publish live recall@10.
    let canary_every_s: u64 = args.get_or("canary-every-s", 30)?;
    if want_ann && canary_every_s > 0 {
        let n_probes: usize = args.get_or("canary-probes", 16)?;
        let probes = canary_probes(data.num_items, n_probes, 8, 42);
        let engine_c = Arc::clone(&engine);
        let obs_c = Arc::clone(&obs);
        std::thread::spawn(move || loop {
            if let Some(recall) = canary_recall(engine_c.as_ref(), &probes, 10) {
                obs_c.set_canary_recall(recall);
            }
            std::thread::sleep(Duration::from_secs(canary_every_s));
        });
    }

    let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "serving {} items on {addr} (mode {mode:?}, batch-max {batch_max}, batch-wait {batch_wait_us}us, \
         quantize {quant}, topk {default_topk:?}{}, admin endpoint on, trace sample 1/{})",
        data.num_items,
        if want_ann {
            format!(", ann ef {ann_ef}")
        } else {
            String::new()
        },
        obs.sample_every(),
    );
    server::run_obs(listener, batcher, Some(obs)).map_err(|e| e.to_string())
}

/// A required numeric field of a validated telemetry event (defaulting to
/// NaN covers `null`, which stands in for non-finite floats on the wire).
fn num(obj: &telemetry::json::Json, key: &str) -> f64 {
    use telemetry::json::Json;
    obj.get(key).and_then(Json::as_num).unwrap_or(f64::NAN)
}

/// `msgc top ADDR`: a polling terminal dashboard over the serve admin
/// endpoint — QPS, latency quantiles from the streaming sketch, batch
/// occupancy, cache/ANN/cold-start traffic, and per-SLO status. Polls
/// every `--interval-ms` (default 1000); `--iters N` renders N frames and
/// exits (for CI), `--iters 0` (default) watches forever and redraws in
/// place.
fn cmd_top(addr: &str, args: &Args) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    use telemetry::json::{self, Json};

    let interval_ms: u64 = args.get_or("interval-ms", 1000)?;
    let iters: u64 = args.get_or("iters", 0)?;

    let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    let mut poll = |cmd: &str| -> Result<json::Json, String> {
        writer
            .write_all(format!("{{\"op\":\"admin\",\"cmd\":\"{cmd}\"}}\n").as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| e.to_string())?;
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| e.to_string())?;
        let obj = json::parse(line.trim()).map_err(|e| format!("bad admin reply: {e}"))?;
        if let Some(err) = obj.get("error").and_then(Json::as_str) {
            return Err(format!("server: {err}"));
        }
        Ok(obj)
    };

    // name -> metric object, from the snapshot's metrics array.
    let find = |metrics: &[Json], name: &str| -> Option<Json> {
        metrics
            .iter()
            .find(|m| m.get("name").and_then(Json::as_str) == Some(name))
            .cloned()
    };
    let counter = |metrics: &[Json], name: &str| -> u64 {
        find(metrics, name).map_or(0, |m| num(&m, "value") as u64)
    };

    let mut frame = 0u64;
    loop {
        frame += 1;
        let snap = poll("snapshot")?;
        let metrics = snap
            .get("metrics")
            .and_then(Json::as_arr)
            .ok_or("snapshot has no metrics array")?
            .to_vec();
        let slos = snap
            .get("slos")
            .and_then(Json::as_arr)
            .ok_or("snapshot has no slos array")?
            .to_vec();

        if iters == 0 {
            print!("\x1b[2J\x1b[H"); // clear + home: redraw in place
        }
        println!("msgc top — {addr} (frame {frame})");
        let qps = find(&metrics, "serve.qps").map_or(0.0, |m| num(&m, "value"));
        let requests = counter(&metrics, "serve.requests");
        let (batches, batch_sum) = find(&metrics, "serve.batch.size")
            .map_or((0, 0), |m| (num(&m, "count") as u64, num(&m, "sum") as u64));
        let occupancy = if batches > 0 {
            batch_sum as f64 / batches as f64
        } else {
            0.0
        };
        println!(
            "  qps {qps:8.1}   requests {requests}   batch occupancy {occupancy:.2} over {batches} batches"
        );
        if let Some(lat) = find(&metrics, "serve.latency_us") {
            println!(
                "  latency_us  p50 {:>8.0}  p90 {:>8.0}  p99 {:>8.0}  p999 {:>8.0}  (n={})",
                num(&lat, "p50"),
                num(&lat, "p90"),
                num(&lat, "p99"),
                num(&lat, "p999"),
                num(&lat, "count"),
            );
        }
        println!(
            "  cache hit {}  miss {}   cold starts {}   ann queries {}  fallbacks {}",
            counter(&metrics, "serve.cache.hit"),
            counter(&metrics, "serve.cache.miss"),
            counter(&metrics, "serve.cold_start"),
            counter(&metrics, "serve.ann.query"),
            counter(&metrics, "serve.ann.fallback"),
        );
        if let Some(recall) = find(&metrics, "serve.canary.recall_at_10") {
            println!("  canary recall@10 {:.4}", num(&recall, "value"));
        }
        println!("  SLOs:");
        for slo in &slos {
            let name = slo.get("name").and_then(Json::as_str).unwrap_or("?");
            let status = slo.get("status").and_then(Json::as_str).unwrap_or("?");
            let breached = slo
                .get("breached_ever")
                .and_then(Json::as_bool)
                .unwrap_or(false);
            let value = slo
                .get("value")
                .and_then(Json::as_num)
                .map_or("--".to_string(), |v| format!("{v:.4}"));
            println!(
                "    {name:<20} {status:<9} value {value:>10}  threshold {:.4}{}",
                num(slo, "threshold"),
                if breached { "  [breached earlier]" } else { "" },
            );
        }
        if iters > 0 && frame >= iters {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(50)));
    }
}

/// Aggregates serve `req` trace events: request counts per op, mean phase
/// breakdown, and outcome-flag totals.
#[derive(Default)]
struct ReqAgg {
    count: u64,
    scores: u64,
    appends: u64,
    enqueue_ns: u64,
    assemble_ns: u64,
    forward_ns: u64,
    retrieve_ns: u64,
    serialize_ns: u64,
    total_ns: u64,
    cold: u64,
    hits: u64,
    ann: u64,
    fallbacks: u64,
}

impl ReqAgg {
    fn add(&mut self, obj: &telemetry::json::Json) {
        use telemetry::json::Json;
        self.count += 1;
        match obj.get("op").and_then(Json::as_str) {
            Some("score") => self.scores += 1,
            Some("append") => self.appends += 1,
            _ => {}
        }
        self.enqueue_ns += num(obj, "enqueue_ns") as u64;
        self.assemble_ns += num(obj, "assemble_ns") as u64;
        self.forward_ns += num(obj, "forward_ns") as u64;
        self.retrieve_ns += num(obj, "retrieve_ns") as u64;
        self.serialize_ns += num(obj, "serialize_ns") as u64;
        self.total_ns += num(obj, "total_ns") as u64;
        let flag = |key: &str| obj.get(key).and_then(Json::as_bool).unwrap_or(false) as u64;
        self.cold += flag("cold_start");
        self.hits += flag("cache_hit");
        self.ann += flag("ann");
        self.fallbacks += flag("ann_fallback");
    }

    fn print(&self) {
        if self.count == 0 {
            return;
        }
        println!(
            "\nserve requests ({} sampled: {} score, {} append):",
            self.count, self.scores, self.appends
        );
        let mean_ms = self.total_ns as f64 / self.count as f64 / 1e6;
        println!("  mean sampled latency {mean_ms:.3} ms");
        let phases = [
            ("enqueue", self.enqueue_ns),
            ("assemble", self.assemble_ns),
            ("forward", self.forward_ns),
            ("retrieve", self.retrieve_ns),
            ("serialize", self.serialize_ns),
        ];
        for (name, ns) in phases {
            let mean = ns as f64 / self.count as f64 / 1e6;
            let frac = if self.total_ns > 0 {
                100.0 * ns as f64 / self.total_ns as f64
            } else {
                0.0
            };
            // Batch assembly ends at the same dispatch instant the queue
            // wait does; its share is contained in enqueue's, not added.
            let note = if name == "assemble" {
                "  [within enqueue]"
            } else {
                ""
            };
            println!("    {name:<10} {mean:>9.3} ms mean  ({frac:>5.1}% of total){note}");
        }
        println!(
            "  outcomes: {} cold start(s), {} cache hit(s), {} ann-served, {} ann fallback(s)",
            self.cold, self.hits, self.ann, self.fallbacks
        );
    }
}

/// `msgc report`: re-aggregate a metrics JSONL stream (and optionally a
/// trace stream) into the per-term loss curves, health events, final
/// deterministic counters, and — with `--trace` — the top wall-clock
/// sinks by span name. Serve-side streams are summarized too: sketch
/// metrics print their quantiles, and sampled `req` events print a phase
/// breakdown (so piping a `msgc serve --trace-out` file through either
/// argument works).
fn cmd_report(metrics_path: &str, args: &Args) -> Result<(), String> {
    use meta_sgcl_repro::meta_sgcl::EpochStats;
    use telemetry::json::{self, Json};
    use telemetry::schema;

    let text = std::fs::read_to_string(metrics_path).map_err(|e| format!("{metrics_path}: {e}"))?;
    let mut epochs: Vec<(EpochStats, usize)> = Vec::new();
    let mut batches = 0usize;
    let mut health: Vec<String> = Vec::new();
    let mut counters: Vec<(String, u64)> = Vec::new();
    let mut sketches: Vec<String> = Vec::new();
    let mut reqs = ReqAgg::default();
    let mut checkpoints = 0usize;
    let mut resumes = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        schema::validate_line(line).map_err(|e| format!("{metrics_path}:{}: {e}", i + 1))?;
        let obj = json::parse(line).map_err(|e| e.to_string())?;
        match obj.get("ev").and_then(Json::as_str) {
            Some("run") => {
                println!(
                    "run: strategy {} seed {} shard_size {}",
                    obj.get("strategy").and_then(Json::as_str).unwrap_or("?"),
                    num(&obj, "seed"),
                    num(&obj, "shard_size"),
                );
            }
            Some("batch") => batches += 1,
            Some("epoch") => {
                let kl_a = num(&obj, "kl_a");
                let kl_b = num(&obj, "kl_b");
                let stats = EpochStats {
                    epoch: num(&obj, "epoch") as usize,
                    rec: num(&obj, "recon"),
                    kl_a,
                    kl_b,
                    kl: kl_a + kl_b,
                    cl: num(&obj, "info_nce"),
                    total: num(&obj, "total"),
                    // No timing in the metrics stream (determinism
                    // contract); Display omits the throughput suffix.
                    wall_ms: 0.0,
                    seqs_per_sec: 0.0,
                };
                epochs.push((stats, num(&obj, "batches") as usize));
            }
            Some("health") => health.push(format!(
                "epoch {} batch {} step {}: [{}] {}",
                num(&obj, "epoch"),
                num(&obj, "batch"),
                num(&obj, "step"),
                obj.get("detector").and_then(Json::as_str).unwrap_or("?"),
                obj.get("message").and_then(Json::as_str).unwrap_or(""),
            )),
            Some("metric") => {
                match (
                    obj.get("name").and_then(Json::as_str),
                    obj.get("kind").and_then(Json::as_str),
                ) {
                    (Some(name), Some("counter")) => {
                        counters.push((name.to_string(), num(&obj, "value") as u64));
                    }
                    (Some(name), Some("sketch")) => sketches.push(format!(
                        "{name}: n={} p50={:.0} p90={:.0} p99={:.0} p999={:.0}",
                        num(&obj, "count"),
                        num(&obj, "p50"),
                        num(&obj, "p90"),
                        num(&obj, "p99"),
                        num(&obj, "p999"),
                    )),
                    _ => {}
                }
            }
            Some("req") => reqs.add(&obj),
            Some("checkpoint") => checkpoints += 1,
            Some("resume") => resumes += 1,
            _ => {}
        }
    }

    if !epochs.is_empty() || batches > 0 {
        println!(
            "\nloss curves ({} epochs, {batches} batch events):",
            epochs.len()
        );
    }
    for (stats, n) in &epochs {
        println!("  {stats} [{n} batches]");
    }
    if checkpoints + resumes > 0 {
        println!("\ncheckpoints committed: {checkpoints}, resumes: {resumes}");
    }
    if health.is_empty() {
        if !epochs.is_empty() || batches > 0 {
            println!("\nhealth: no detector fired");
        }
    } else {
        println!("\nhealth events:");
        for h in &health {
            println!("  {h}");
        }
    }
    if !counters.is_empty() {
        println!("\nfinal counters (deterministic):");
        for (name, value) in &counters {
            println!("  {name} = {value}");
        }
    }
    if !sketches.is_empty() {
        println!("\nlatency sketches:");
        for s in &sketches {
            println!("  {s}");
        }
    }
    reqs.print();

    if let Some(trace_path) = args.get("trace") {
        let text = std::fs::read_to_string(trace_path).map_err(|e| format!("{trace_path}: {e}"))?;
        // name -> (total ns, span count)
        let mut sinks: HashMap<String, (u64, u64)> = HashMap::new();
        let mut trace_reqs = ReqAgg::default();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            schema::validate_line(line).map_err(|e| format!("{trace_path}:{}: {e}", i + 1))?;
            let obj = json::parse(line).map_err(|e| e.to_string())?;
            match obj.get("ev").and_then(Json::as_str) {
                Some("span") => {
                    let name = obj.get("name").and_then(Json::as_str).unwrap_or("?");
                    let e = sinks.entry(name.to_string()).or_insert((0, 0));
                    e.0 += num(&obj, "dur_ns") as u64;
                    e.1 += 1;
                }
                Some("req") => trace_reqs.add(&obj),
                _ => {}
            }
        }
        trace_reqs.print();
        let mut sinks: Vec<(String, (u64, u64))> = sinks.into_iter().collect();
        sinks.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(&b.0)));
        println!("\ntop time sinks (by total span wall-clock):");
        for (name, (total_ns, count)) in sinks.iter().take(10) {
            println!(
                "  {name:<12} {:>10.2} ms across {count} span(s)",
                *total_ns as f64 / 1e6
            );
        }
    }
    Ok(())
}

/// `msgc check`: run the static graph auditor (shape inference,
/// gradient-flow/freeze contracts, numeric sanitation, cost/liveness,
/// reassociation-safety, frozen-forward parity) over one model or the
/// whole registered zoo. Exits non-zero if any audit fails, so it slots
/// into CI. All six passes always run and gate cleanliness; `--cost`,
/// `--determinism`, and `--frozen-parity` print extra per-stage detail.
/// `--audit-json FILE` writes the machine-readable report. `--inject-fault
/// <shape|freeze|reassoc|cost|parity>` deliberately breaks the traced
/// tape first, to prove the detectors fire.
fn cmd_check(args: &Args) -> Result<(), String> {
    use meta_sgcl_repro::analysis::{self, Fault};

    let fault = match args.get("inject-fault") {
        None => None,
        Some("shape") => Some(Fault::Shape),
        Some("freeze") => Some(Fault::Freeze),
        Some("reassoc") => Some(Fault::Reassoc),
        Some("cost") => Some(Fault::Cost),
        Some("parity") => Some(Fault::Parity),
        Some(other) => {
            return Err(format!(
                "unknown fault kind `{other}` (shape|freeze|reassoc|cost|parity)"
            ))
        }
    };
    let names: Vec<&str> = match (args.get("model"), args.get("all")) {
        (Some(_), Some(_)) => return Err("--model and --all are mutually exclusive".into()),
        (Some(name), None) => vec![name],
        _ => analysis::MODELS.to_vec(),
    };
    // Table-level pass first: the SIMD kernel registry must be internally
    // consistent (every vectorised op classified, fixed-order ops only on
    // order-preserving kernels) before any per-model tape is worth auditing.
    let mut failures = 0usize;
    let (simd_findings, simd_summary) = analysis::check_simd_registry();
    for f in &simd_findings {
        println!("simd-registry: {f}");
    }
    if !simd_findings.is_empty() {
        failures += 1;
    } else if args.get("determinism").is_some() {
        println!(
            "    [determinism] SIMD kernel registry: {} op(s) \
             ({} order-preserving, {} reassociating), all classified",
            simd_summary.total(),
            simd_summary.order_preserving,
            simd_summary.reassociating,
        );
    }
    let mut reports = Vec::new();
    for name in names {
        let report = match fault {
            None => analysis::audit_model(name),
            Some(f) => analysis::audit_model_with_fault(name, f),
        }
        .ok_or_else(|| {
            format!(
                "unknown model `{name}` (registered: {})",
                analysis::MODELS.join(", ")
            )
        })?;
        print!("{report}");
        if args.get("cost").is_some() {
            for s in &report.stages {
                println!(
                    "    [cost] {}/{}: {} flops, tape {} B, closures {} B, \
                     backward peak {} B, grads {} B, transient {} B => predicted peak {} B",
                    report.model,
                    s.stage,
                    s.cost.flops,
                    s.cost.tape_bytes,
                    s.cost.closure_bytes,
                    s.cost.backward_peak_bytes,
                    s.cost.param_grad_bytes,
                    s.cost.transient_bytes,
                    s.cost.predicted_peak_bytes,
                );
                for c in &s.cost.pool_classes {
                    println!(
                        "      pool class numel {}: {} allocation(s), overflow {}",
                        c.numel,
                        c.allocations,
                        c.overflow()
                    );
                }
            }
        }
        if args.get("determinism").is_some() {
            for s in &report.stages {
                println!(
                    "    [determinism] {}/{}: {} fixed-order node(s), {} reassoc-safe node(s), \
                     {} finding(s)",
                    report.model,
                    s.stage,
                    s.determinism_summary.fixed_order,
                    s.determinism_summary.reassoc_safe,
                    s.determinism.len(),
                );
            }
        }
        if args.get("frozen-parity").is_some() {
            match &report.parity {
                None => println!(
                    "    [frozen-parity] {}: no frozen twin declared",
                    report.model
                ),
                Some(p) => println!(
                    "    [frozen-parity] {}: {} declared op(s) vs {} taped op(s) at `{}` — {}",
                    report.model,
                    p.declared_len,
                    p.actual_len,
                    p.path,
                    if p.is_clean() { "match" } else { "DIVERGED" },
                ),
            }
        }
        if !report.is_clean() {
            failures += 1;
        }
        reports.push(report);
    }
    if let Some(path) = args.get("audit-json") {
        std::fs::write(path, analysis::report::to_json(&reports))
            .map_err(|e| format!("writing audit JSON to {path}: {e}"))?;
        println!("wrote audit JSON to {path}");
    }
    if failures > 0 {
        return Err(format!("{failures} audit(s) failed"));
    }
    println!("all audits clean");
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        return usage();
    };
    // `report` and `top` take one positional argument: the metrics JSONL
    // file and the server address respectively.
    let (positional, rest) = match (cmd.as_str(), argv.get(1)) {
        ("report" | "top", Some(a)) if !a.starts_with("--") => (Some(a.as_str()), &argv[2..]),
        ("report", _) => {
            eprintln!("error: report requires a metrics JSONL file");
            return usage();
        }
        ("top", _) => {
            eprintln!("error: top requires a server address (HOST:PORT)");
            return usage();
        }
        _ => (None, &argv[1..]),
    };
    let args = match Args::parse(rest) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&args),
        "stats" => cmd_stats(&args),
        "train" => cmd_train(&args),
        "evaluate" => cmd_evaluate(&args),
        "recommend" => cmd_recommend(&args),
        "serve" => cmd_serve(&args),
        "top" => cmd_top(positional.unwrap_or_default(), &args),
        "check" => cmd_check(&args),
        "report" => cmd_report(positional.unwrap_or_default(), &args),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_accepts_known_flags() {
        let args = Args::parse(&argv(&["--data", "d.csv", "--threads", "4", "--joint"])).unwrap();
        assert_eq!(args.get("data"), Some("d.csv"));
        assert_eq!(args.get_or::<usize>("threads", 1).unwrap(), 4);
        assert_eq!(args.get("joint"), Some("true"));
    }

    #[test]
    fn parse_rejects_unknown_flag_by_name() {
        let err = Args::parse(&argv(&["--data", "d.csv", "--bogus", "1"])).unwrap_err();
        assert!(err.contains("--bogus"), "error must name the flag: {err}");
    }

    #[test]
    fn parse_rejects_bare_value_flag_at_end() {
        let err = Args::parse(&argv(&["--epochs"])).unwrap_err();
        assert!(
            err.contains("missing value") && err.contains("--epochs"),
            "{err}"
        );
    }

    #[test]
    fn parse_rejects_positional_argument() {
        let err = Args::parse(&argv(&["stray"])).unwrap_err();
        assert!(err.contains("stray"), "{err}");
    }

    #[test]
    fn parse_accepts_telemetry_flags() {
        let args = Args::parse(&argv(&[
            "--metrics-out",
            "m.jsonl",
            "--trace-out",
            "t.jsonl",
            "--strict-health",
        ]))
        .unwrap();
        assert_eq!(args.get("metrics-out"), Some("m.jsonl"));
        assert_eq!(args.get("trace-out"), Some("t.jsonl"));
        assert_eq!(args.get("strict-health"), Some("true"));
    }

    #[test]
    fn parse_accepts_auditor_flags() {
        let args = Args::parse(&argv(&[
            "--all",
            "--cost",
            "--determinism",
            "--frozen-parity",
            "--audit-json",
            "audit.json",
            "--inject-fault",
            "reassoc",
        ]))
        .unwrap();
        assert_eq!(args.get("cost"), Some("true"));
        assert_eq!(args.get("determinism"), Some("true"));
        assert_eq!(args.get("frozen-parity"), Some("true"));
        assert_eq!(args.get("audit-json"), Some("audit.json"));
        assert_eq!(args.get("inject-fault"), Some("reassoc"));
    }

    #[test]
    fn get_or_reports_bad_values() {
        let args = Args::parse(&argv(&["--epochs", "many"])).unwrap();
        let err = args.get_or::<usize>("epochs", 1).unwrap_err();
        assert!(err.contains("--epochs") && err.contains("many"), "{err}");
    }
}

//! Cross-crate integration tests: dataset → split → train → evaluate, for
//! every model family, plus determinism guarantees.

use meta_sgcl_repro::meta_sgcl::{MetaSgcl, MetaSgclConfig};
use meta_sgcl_repro::models::{
    evaluate_test, evaluate_valid, Bert4Rec, BprMf, Caser, DuoRec, Gru4Rec, NetConfig, Pop, SasRec,
    SequentialRecommender, TrainConfig, Vsan,
};
use meta_sgcl_repro::recdata::{synth, Dataset, LeaveOneOut};

/// A small but learnable workload (strong successor chains).
fn tiny_workload() -> (Dataset, LeaveOneOut) {
    let cfg = synth::SynthConfig {
        num_users: 120,
        num_items: 60,
        num_clusters: 6,
        mean_len: 12.0,
        min_len: 6,
        max_len: 30,
        markov_weight: 0.7,
        pop_weight: 0.1,
        ..synth::SynthConfig::toys_like(7)
    };
    let data = synth::generate(&cfg);
    let split = LeaveOneOut::split(&data);
    (data, split)
}

fn tiny_net(num_items: usize) -> NetConfig {
    NetConfig {
        max_len: 12,
        dim: 16,
        layers: 1,
        ..NetConfig::for_items(num_items)
    }
}

fn tiny_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 16,
        batch_size: 32,
        max_len: 12,
        ..Default::default()
    }
}

/// HR@10 of a uniformly random ranker is ~ 10 / num_items.
fn random_hr10(num_items: usize) -> f64 {
    10.0 / num_items as f64
}

#[test]
fn every_neural_model_beats_random_ranking() {
    let (data, split) = tiny_workload();
    let train = split.train_sequences();
    let chance = random_hr10(data.num_items);

    let mut models: Vec<Box<dyn SequentialRecommender>> = vec![
        Box::new(Gru4Rec::new(data.num_items, 12, 16, 1)),
        Box::new(Caser::new(data.num_items, 4, 16, 1)),
        Box::new(SasRec::new(tiny_net(data.num_items))),
        Box::new(Bert4Rec::new(tiny_net(data.num_items))),
        Box::new(Vsan::new(tiny_net(data.num_items), 0.05)),
        Box::new(DuoRec::new(tiny_net(data.num_items))),
        Box::new(MetaSgcl::new(MetaSgclConfig {
            net: tiny_net(data.num_items),
            ..MetaSgclConfig::for_items(data.num_items)
        })),
    ];
    for model in models.iter_mut() {
        model.fit(&train, &tiny_cfg());
        let r = evaluate_test(model.as_mut(), &split, &[10]);
        assert!(
            r.hr(10) > 1.5 * chance,
            "{} HR@10 {:.4} not above 1.5x chance {:.4}",
            model.name(),
            r.hr(10),
            chance
        );
    }
}

#[test]
fn pop_and_bpr_learn_something_but_less_than_sasrec() {
    let (data, split) = tiny_workload();
    let train = split.train_sequences();

    let mut pop = Pop::new(data.num_items);
    pop.fit(&train, &tiny_cfg());
    let r_pop = evaluate_test(&mut pop, &split, &[10]);

    let mut bpr = BprMf::new(data.num_items, 16);
    bpr.fit(
        &train,
        &TrainConfig {
            epochs: 20,
            ..tiny_cfg()
        },
    );
    let r_bpr = evaluate_test(&mut bpr, &split, &[10]);

    let mut sas = SasRec::new(tiny_net(data.num_items));
    sas.fit(&train, &tiny_cfg());
    let r_sas = evaluate_test(&mut sas, &split, &[10]);

    // Traditional methods beat pure chance…
    let chance = random_hr10(data.num_items);
    assert!(
        r_pop.hr(10) > chance,
        "Pop {:.4} vs chance {chance:.4}",
        r_pop.hr(10)
    );
    assert!(
        r_bpr.hr(10) > chance,
        "BPR {:.4} vs chance {chance:.4}",
        r_bpr.hr(10)
    );
    // …but the sequential model dominates on sequential data (Table II).
    assert!(
        r_sas.ndcg(10) > r_pop.ndcg(10),
        "SASRec {:.4} should beat Pop {:.4}",
        r_sas.ndcg(10),
        r_pop.ndcg(10)
    );
    assert!(
        r_sas.ndcg(10) > r_bpr.ndcg(10),
        "SASRec {:.4} should beat BPR-MF {:.4}",
        r_sas.ndcg(10),
        r_bpr.ndcg(10)
    );
}

#[test]
fn training_is_deterministic_per_seed() {
    let (data, split) = tiny_workload();
    let train = split.train_sequences();
    let run = || {
        let mut m = SasRec::new(tiny_net(data.num_items));
        m.fit(
            &train,
            &TrainConfig {
                epochs: 3,
                ..tiny_cfg()
            },
        );
        let r = evaluate_test(&mut m, &split, &[5, 10]);
        (r.hr(5), r.hr(10), r.ndcg(5), r.ndcg(10))
    };
    assert_eq!(run(), run(), "same seed must give identical metrics");
}

#[test]
fn different_seeds_give_different_models() {
    let (data, split) = tiny_workload();
    let train = split.train_sequences();
    let run = |seed: u64| {
        let mut m = SasRec::new(NetConfig {
            seed,
            ..tiny_net(data.num_items)
        });
        m.fit(
            &train,
            &TrainConfig {
                epochs: 2,
                seed,
                ..tiny_cfg()
            },
        );
        m.score(0, &split.users[0].test_input())
    };
    assert_ne!(run(1), run(2));
}

#[test]
fn validation_and_test_reports_are_both_computable() {
    let (data, split) = tiny_workload();
    let mut m = SasRec::new(tiny_net(data.num_items));
    m.fit(
        &split.train_sequences(),
        &TrainConfig {
            epochs: 2,
            ..tiny_cfg()
        },
    );
    let rv = evaluate_valid(&mut m, &split, &[5, 10]);
    let rt = evaluate_test(&mut m, &split, &[5, 10]);
    assert_eq!(rv.users, split.num_users());
    assert_eq!(rt.users, split.num_users());
    for r in [&rv, &rt] {
        assert!(r.hr(5) <= r.hr(10) + 1e-12);
        assert!((0.0..=1.0).contains(&r.hr(10)));
        assert!((0.0..=1.0).contains(&r.ndcg(10)));
    }
}

#[test]
fn meta_sgcl_improves_over_training() {
    let (data, split) = tiny_workload();
    let train = split.train_sequences();
    let mut short = MetaSgcl::new(MetaSgclConfig {
        net: tiny_net(data.num_items),
        ..MetaSgclConfig::for_items(data.num_items)
    });
    short.fit(
        &train,
        &TrainConfig {
            epochs: 1,
            ..tiny_cfg()
        },
    );
    let r_short = evaluate_test(&mut short, &split, &[10]);

    let mut long = MetaSgcl::new(MetaSgclConfig {
        net: tiny_net(data.num_items),
        ..MetaSgclConfig::for_items(data.num_items)
    });
    long.fit(
        &train,
        &TrainConfig {
            epochs: 10,
            ..tiny_cfg()
        },
    );
    let r_long = evaluate_test(&mut long, &split, &[10]);

    assert!(
        r_long.ndcg(10) > r_short.ndcg(10),
        "more training should help: {:.4} vs {:.4}",
        r_long.ndcg(10),
        r_short.ndcg(10)
    );
}

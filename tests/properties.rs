//! Property-based tests (proptest) on cross-crate invariants: tensor
//! algebra laws, softmax/ranking invariants, dataset/batching invariants,
//! and loss-function bounds.

use meta_sgcl_repro::autograd::Graph;
use meta_sgcl_repro::metrics::{rank_of, MetricAccumulator};
use meta_sgcl_repro::models::{info_nce, Similarity};
use meta_sgcl_repro::recdata::{
    encode_input_only, encode_sequence, inject_noise, item_crop, item_mask, item_reorder,
};
use meta_sgcl_repro::tensor::{broadcast_shapes, ops, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

fn tensor_for(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = dims.iter().product();
    prop::collection::vec(-10.0f32..10.0, n..=n)
        .prop_map(move |data| Tensor::from_vec(data, dims.clone()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ----- tensor algebra ---------------------------------------------------

    #[test]
    fn add_commutes(dims in small_dims()) {
        let t = dims.clone();
        let runner = |a: &Tensor, b: &Tensor| {
            let ab = ops::add(a, b).unwrap();
            let ba = ops::add(b, a).unwrap();
            prop_assert_eq!(ab.data(), ba.data());
            Ok(())
        };
        let mut rng = StdRng::seed_from_u64(dims.iter().sum::<usize>() as u64);
        let a = meta_sgcl_repro::tensor::init::randn(&mut rng, t.clone(), 0.0, 1.0);
        let b = meta_sgcl_repro::tensor::init::randn(&mut rng, t, 0.0, 1.0);
        runner(&a, &b)?;
    }

    #[test]
    fn broadcast_is_symmetric_and_idempotent(a in small_dims(), b in small_dims()) {
        let ab = broadcast_shapes(&a, &b);
        let ba = broadcast_shapes(&b, &a);
        match (ab, ba) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(&x, &y);
                // Broadcasting a shape with itself is identity.
                prop_assert_eq!(broadcast_shapes(&x, &x).unwrap(), x);
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "broadcast symmetry violated"),
        }
    }

    #[test]
    fn unbroadcast_preserves_total_mass(dims in small_dims()) {
        let mut rng = StdRng::seed_from_u64(1);
        let g = meta_sgcl_repro::tensor::init::randn(&mut rng, dims.clone(), 0.0, 1.0);
        // Reducing to a scalar shape keeps the sum.
        let reduced = ops::unbroadcast(&g, &[]);
        prop_assert!((reduced.item() - g.sum_all()).abs() < 1e-3 * (1.0 + g.sum_all().abs()));
    }

    #[test]
    fn transpose_is_involution(r in 1usize..5, c in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(2);
        let a = meta_sgcl_repro::tensor::init::randn(&mut rng, vec![r, c], 0.0, 1.0);
        let back = ops::transpose_last2(&ops::transpose_last2(&a).unwrap()).unwrap();
        prop_assert_eq!(a.data(), back.data());
    }

    #[test]
    fn matmul_identity_is_neutral(n in 1usize..6, m in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(3);
        let a = meta_sgcl_repro::tensor::init::randn(&mut rng, vec![n, m], 0.0, 1.0);
        let mut eye = Tensor::zeros(vec![m, m]);
        for i in 0..m {
            eye.data_mut()[i * m + i] = 1.0;
        }
        let out = ops::matmul(&a, &eye).unwrap();
        for (x, y) in a.data().iter().zip(out.data().iter()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    // ----- softmax / ranking -------------------------------------------------

    #[test]
    fn softmax_rows_are_distributions(t in small_dims().prop_flat_map(tensor_for)) {
        let s = ops::softmax_last(&t);
        let last = s.dim(s.ndim() - 1);
        for row in s.data().chunks_exact(last) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row sum {sum}");
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    #[test]
    fn rank_is_within_bounds(scores in prop::collection::vec(-5.0f32..5.0, 2..40),
                             target_raw in 1usize..40) {
        let n = scores.len();
        let target = 1 + (target_raw - 1) % (n - 1).max(1);
        if target < n {
            let r = rank_of(&scores, target);
            prop_assert!(r >= 1 && r < n, "rank {r} out of [1, {}]", n - 1);
        }
    }

    #[test]
    fn boosting_target_score_never_worsens_rank(
        scores in prop::collection::vec(-5.0f32..5.0, 3..20),
        target_raw in 1usize..20,
    ) {
        let n = scores.len();
        let target = 1 + (target_raw - 1) % (n - 1);
        let before = rank_of(&scores, target);
        let mut boosted = scores.clone();
        boosted[target] += 10.0;
        let after = rank_of(&boosted, target);
        prop_assert!(after <= before);
    }

    #[test]
    fn metric_accumulator_bounds(ranks in prop::collection::vec(1usize..200, 1..50)) {
        let mut acc = MetricAccumulator::new(&[5, 10]);
        for r in &ranks {
            acc.add_rank(*r);
        }
        let rep = acc.finish();
        for k in [5usize, 10] {
            prop_assert!((0.0..=1.0).contains(&rep.hr(k)));
            prop_assert!((0.0..=1.0).contains(&rep.ndcg(k)));
            prop_assert!(rep.ndcg(k) <= rep.hr(k) + 1e-12, "NDCG@k ≤ HR@k");
            prop_assert!(rep.mrr(k) <= rep.hr(k) + 1e-12, "MRR@k ≤ HR@k");
        }
        prop_assert!(rep.hr(5) <= rep.hr(10) + 1e-12);
    }

    // ----- data pipeline ------------------------------------------------------

    #[test]
    fn encode_sequence_invariants(seq in prop::collection::vec(1usize..100, 2..30),
                                  max_len in 2usize..25) {
        let (input, targets, pad) = encode_sequence(&seq, max_len);
        prop_assert_eq!(input.len(), max_len);
        prop_assert_eq!(targets.len(), max_len);
        prop_assert_eq!(pad.len(), max_len);
        for ((it, tg), pd) in input.iter().zip(&targets).zip(&pad) {
            if *pd {
                prop_assert_eq!(*it, 0);
                prop_assert_eq!(*tg, usize::MAX);
            } else {
                prop_assert!(*it >= 1);
                prop_assert!(*tg >= 1 && *tg < usize::MAX);
            }
        }
        // Final target is the sequence's last item.
        prop_assert_eq!(*targets.last().unwrap(), *seq.last().unwrap());
        // Input never contains the final item at the last position.
        let (ionly, _) = encode_input_only(&seq, max_len);
        prop_assert_eq!(*ionly.last().unwrap(), *seq.last().unwrap());
    }

    #[test]
    fn augmentations_respect_invariants(seq in prop::collection::vec(1usize..50, 2..20),
                                        seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let crop = item_crop(&seq, 0.5, &mut rng);
        prop_assert!(!crop.is_empty() && crop.len() <= seq.len());
        let mask = item_mask(&seq, 0.3, 50, &mut rng);
        prop_assert_eq!(mask.len(), seq.len());
        prop_assert!(mask.iter().all(|&x| (1..=51).contains(&x)));
        let reorder = item_reorder(&seq, 0.5, &mut rng);
        let mut a = seq.clone();
        let mut b = reorder.clone();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        let noisy = inject_noise(std::slice::from_ref(&seq), 0.25, 50, &mut rng);
        prop_assert!(noisy[0].len() >= seq.len());
    }

    // ----- losses ---------------------------------------------------------------

    #[test]
    fn info_nce_is_bounded_below_and_finite(seed in 0u64..500, b in 2usize..8, d in 2usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Graph::new();
        let z = g.constant(meta_sgcl_repro::tensor::init::randn(&mut rng, vec![b, d], 0.0, 1.0));
        let zp = g.constant(meta_sgcl_repro::tensor::init::randn(&mut rng, vec![b, d], 0.0, 1.0));
        for sim in [Similarity::Dot, Similarity::Cosine] {
            let l = info_nce(&z, &zp, 0.7, sim).item();
            prop_assert!(l.is_finite());
            prop_assert!(l >= 0.0, "cross-entropy form is non-negative: {l}");
        }
    }
}

//! Meta-SGCL-specific integration tests: the two training strategies, the
//! ablation grid, checkpointing, and the contrastive-view machinery.

use meta_sgcl_repro::meta_sgcl::{Ablation, MetaSgcl, MetaSgclConfig, TrainStrategy};
use meta_sgcl_repro::models::{evaluate_test, NetConfig, SequentialRecommender, TrainConfig};
use meta_sgcl_repro::recdata::{synth, LeaveOneOut};

fn workload() -> (usize, LeaveOneOut) {
    let cfg = synth::SynthConfig {
        num_users: 100,
        num_items: 50,
        num_clusters: 5,
        mean_len: 10.0,
        min_len: 6,
        max_len: 24,
        markov_weight: 0.65,
        pop_weight: 0.1,
        ..synth::SynthConfig::toys_like(11)
    };
    let data = synth::generate(&cfg);
    let split = LeaveOneOut::split(&data);
    (data.num_items, split)
}

fn cfg(num_items: usize) -> MetaSgclConfig {
    MetaSgclConfig {
        net: NetConfig {
            max_len: 12,
            dim: 16,
            layers: 1,
            ..NetConfig::for_items(num_items)
        },
        ..MetaSgclConfig::for_items(num_items)
    }
}

fn tc(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 25,
        max_len: 12,
        ..Default::default()
    }
}

#[test]
fn both_strategies_reach_usable_accuracy() {
    let (num_items, split) = workload();
    let train = split.train_sequences();
    let chance = 10.0 / num_items as f64;
    for strategy in [TrainStrategy::Joint, TrainStrategy::MetaTwoStep] {
        let mut c = cfg(num_items);
        c.strategy = strategy;
        let mut m = MetaSgcl::new(c);
        m.fit(&train, &tc(12));
        let r = evaluate_test(&mut m, &split, &[10]);
        assert!(
            r.hr(10) > 2.0 * chance,
            "{strategy:?}: HR@10 {:.4} vs chance {chance:.4}",
            r.hr(10)
        );
    }
}

#[test]
fn every_ablation_trains_cleanly() {
    let (num_items, split) = workload();
    let train = split.train_sequences();
    for ablation in [
        Ablation::Full,
        Ablation::NoCl,
        Ablation::NoKl,
        Ablation::NoClKl,
    ] {
        let mut c = cfg(num_items);
        c.ablation = ablation;
        let mut m = MetaSgcl::new(c);
        m.fit(&train, &tc(4));
        let h = m.history();
        assert_eq!(h.epochs.len(), 4);
        assert!(
            h.epochs.iter().all(|e| e.total.is_finite()),
            "{ablation:?} diverged"
        );
        let r = evaluate_test(&mut m, &split, &[10]);
        assert!(r.hr(10) > 0.0, "{ablation:?} produced degenerate rankings");
    }
}

#[test]
fn checkpoint_round_trip_restores_scores() {
    let (num_items, split) = workload();
    let train = split.train_sequences();
    let mut m = MetaSgcl::new(cfg(num_items));
    m.fit(&train, &tc(3));
    let probe = split.users[0].test_input();
    let scores_before = m.score(0, &probe);

    let dir = std::env::temp_dir().join("meta_sgcl_ckpt_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.msgc");
    m.save(&path).unwrap();

    // Wreck the weights, confirm behaviour changed, then restore.
    for p in m.all_parameters() {
        p.borrow_mut().value.scale_inplace(0.0);
    }
    assert_ne!(m.score(0, &probe), scores_before);
    m.load(&path).unwrap();
    assert_eq!(m.score(0, &probe), scores_before);
}

#[test]
fn checkpoint_into_fresh_model_matches() {
    let (num_items, split) = workload();
    let train = split.train_sequences();
    let mut trained = MetaSgcl::new(cfg(num_items));
    trained.fit(&train, &tc(3));
    let dir = std::env::temp_dir().join("meta_sgcl_ckpt_fresh");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.msgc");
    trained.save(&path).unwrap();

    let mut fresh = MetaSgcl::new(cfg(num_items));
    fresh.load(&path).unwrap();
    let probe = split.users[1].test_input();
    assert_eq!(fresh.score(0, &probe), trained.score(0, &probe));
}

#[test]
fn history_reports_all_loss_components() {
    let (num_items, split) = workload();
    let mut m = MetaSgcl::new(cfg(num_items));
    m.fit(&split.train_sequences(), &tc(3));
    for e in &m.history().epochs {
        assert!(e.rec > 0.0, "reconstruction loss should be positive");
        assert!(e.kl >= 0.0, "KL is non-negative");
        assert!(e.cl >= 0.0, "InfoNCE is non-negative");
        assert!(
            e.total >= e.rec - 1e-6,
            "total includes rec plus weighted extras"
        );
    }
}

#[test]
fn meta_lr_override_is_respected() {
    let (num_items, split) = workload();
    let train = split.train_sequences();
    // meta_lr = 0 freezes σ' in practice: its weights must not move.
    let mut c = cfg(num_items);
    c.meta_lr = Some(0.0);
    let mut m = MetaSgcl::new(c);
    let before: Vec<f32> = m
        .meta_parameters()
        .iter()
        .flat_map(|p| p.borrow().value.data().to_vec())
        .collect();
    m.fit(&train, &tc(2));
    let after: Vec<f32> = m
        .meta_parameters()
        .iter()
        .flat_map(|p| p.borrow().value.data().to_vec())
        .collect();
    assert_eq!(before, after, "meta_lr = 0 must freeze Enc_σ'");
}
